// Unit and property tests for the Thrust-analog device primitives, checked
// against serial host references over randomized and adversarial inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "device/device_context.h"
#include "primitives/compact.h"
#include "primitives/partition.h"
#include "primitives/reduce.h"
#include "primitives/scan.h"
#include "primitives/segmented.h"
#include "primitives/sort.h"
#include "primitives/transform.h"

namespace gbdt::prim {
namespace {

using device::Device;
using device::DeviceConfig;

Device make_device() { return Device(DeviceConfig::titan_x_pascal()); }

std::vector<double> random_doubles(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-10.0, 10.0);
  std::vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

// Random segmentation of [0, n): returns offsets (n_seg + 1 entries).
std::vector<std::int64_t> random_offsets(std::int64_t n, unsigned seed,
                                         bool allow_empty = true) {
  std::mt19937 rng(seed);
  std::vector<std::int64_t> offs{0};
  std::int64_t pos = 0;
  std::uniform_int_distribution<int> step(allow_empty ? 0 : 1, 700);
  while (pos < n) {
    pos = std::min<std::int64_t>(n, pos + step(rng));
    offs.push_back(pos);
  }
  if (offs.back() != n) offs.push_back(n);
  return offs;
}

TEST(Transform, FillIotaTransform) {
  auto dev = make_device();
  auto buf = dev.alloc<int>(1000);
  fill(dev, buf, 7);
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(buf[i], 7);
  iota(dev, buf, 5);
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(buf[i], 5 + static_cast<int>(i));
  auto out = dev.alloc<long>(1000);
  transform(dev, buf, out, [](int v) { return static_cast<long>(v) * 2; });
  for (std::size_t i = 0; i < 1000; ++i)
    ASSERT_EQ(out[i], 2 * (5 + static_cast<long>(i)));
}

TEST(Transform, GatherScatterRoundTrip) {
  auto dev = make_device();
  const std::size_t n = 777;
  std::vector<float> host(n);
  std::iota(host.begin(), host.end(), 0.f);
  auto src = dev.to_device<float>(host);

  std::vector<std::int64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), std::mt19937(42));
  auto map = dev.to_device<std::int64_t>(perm);

  auto gathered = dev.alloc<float>(n);
  gather(dev, src, map, gathered);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(gathered[i], host[static_cast<std::size_t>(perm[i])]);

  auto scattered = dev.alloc<float>(n);
  scatter(dev, gathered, map, scattered);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(scattered[i], host[i]);
  // Gather marks irregular traffic on the timeline.
  EXPECT_GT(dev.timeline().kernels.at("gather").stats.irregular_accesses, 0u);
}

TEST(Reduce, SumMatchesSerial) {
  auto dev = make_device();
  for (std::size_t n : {1u, 255u, 256u, 257u, 10000u}) {
    auto host = random_doubles(n, static_cast<unsigned>(n));
    auto buf = dev.to_device<double>(host);
    const double got = reduce_sum(dev, buf);
    const double want = std::accumulate(host.begin(), host.end(), 0.0);
    EXPECT_NEAR(got, want, 1e-9 * n) << "n=" << n;
  }
}

TEST(Reduce, EmptyInput) {
  auto dev = make_device();
  auto buf = dev.alloc<double>(0);
  EXPECT_EQ(reduce_sum(dev, buf), 0.0);
  EXPECT_EQ(arg_max(dev, buf).index, -1);
}

TEST(Reduce, ArgMaxFindsFirstMaximum) {
  auto dev = make_device();
  std::vector<double> host(1000, 1.0);
  host[333] = 9.0;
  host[700] = 9.0;  // tie: lower index must win
  auto buf = dev.to_device<double>(host);
  const auto r = arg_max(dev, buf);
  EXPECT_EQ(r.index, 333);
  EXPECT_EQ(r.value, 9.0);
}

class ScanSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ScanSizes, InclusiveMatchesSerial) {
  auto dev = make_device();
  const auto n = static_cast<std::size_t>(GetParam());
  auto host = random_doubles(n, 11);
  auto in = dev.to_device<double>(host);
  auto out = dev.alloc<double>(n);
  inclusive_scan(dev, in, out);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += host[i];
    ASSERT_NEAR(out[i], acc, 1e-9 * (i + 1)) << i;
  }
}

TEST_P(ScanSizes, ExclusiveMatchesSerial) {
  auto dev = make_device();
  const auto n = static_cast<std::size_t>(GetParam());
  auto host = random_doubles(n, 13);
  auto in = dev.to_device<double>(host);
  auto out = dev.alloc<double>(n);
  exclusive_scan(dev, in, out);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(out[i], acc, 1e-9 * (i + 1)) << i;
    acc += host[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(1, 2, 255, 256, 257, 512, 1000,
                                           4096, 100001));

TEST(SetKeys, WritesSegmentIds) {
  auto dev = make_device();
  std::vector<std::int64_t> offs{0, 3, 3, 7, 12};
  auto d_offs = dev.to_device<std::int64_t>(offs);
  auto keys = dev.alloc<std::int32_t>(12);
  for (std::int64_t spb : {1, 2, 100}) {
    fill(dev, keys, std::int32_t{-1});
    set_keys(dev, d_offs, keys, spb);
    const std::vector<std::int32_t> want{0, 0, 0, 2, 2, 2, 2, 3, 3, 3, 3, 3};
    for (std::size_t i = 0; i < 12; ++i)
      ASSERT_EQ(keys[i], want[i]) << "spb=" << spb << " i=" << i;
  }
}

TEST(SetKeys, AutoFormulaMatchesPaper) {
  // 1 + #segments / (#SM * C)
  EXPECT_EQ(auto_segs_per_block(100, 28), 1);
  EXPECT_EQ(auto_segs_per_block(28'000, 28), 2);
  EXPECT_EQ(auto_segs_per_block(1'000'000, 28), 1 + 1'000'000 / 28'000);
  EXPECT_EQ(auto_segs_per_block(5'000'000, 28, 500), 1 + 5'000'000 / 14'000);
}

TEST(SetKeys, FewerBlocksWithCustomFormula) {
  auto dev = make_device();
  const std::int64_t n_seg = 200000;
  std::vector<std::int64_t> offs(n_seg + 1);
  for (std::int64_t s = 0; s <= n_seg; ++s) offs[s] = s;  // 1-elem segments
  auto d_offs = dev.to_device<std::int64_t>(offs);
  auto keys = dev.alloc<std::int32_t>(n_seg);

  set_keys(dev, d_offs, keys, 1);
  const double naive = dev.timeline().kernels.at("set_keys").seconds;
  dev.reset_timeline();
  set_keys(dev, d_offs, keys,
           auto_segs_per_block(n_seg, dev.config().num_sms));
  const double custom = dev.timeline().kernels.at("set_keys").seconds;
  EXPECT_LT(custom, naive);  // the 10-20% effect the paper reports
}

class SegScanCase : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SegScanCase, MatchesSerialReference) {
  const auto [n_int, seed] = GetParam();
  const std::int64_t n = n_int;
  auto dev = make_device();
  auto host = random_doubles(static_cast<std::size_t>(n), seed);
  auto offs = random_offsets(n, seed + 1);
  const std::int64_t n_seg = static_cast<std::int64_t>(offs.size()) - 1;

  auto d_vals = dev.to_device<double>(host);
  auto d_offs = dev.to_device<std::int64_t>(offs);
  auto keys = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
  set_keys(dev, d_offs, keys, auto_segs_per_block(n_seg, 28));
  auto out = dev.alloc<double>(static_cast<std::size_t>(n));
  segmented_inclusive_scan_by_key(dev, d_vals, keys, out);

  for (std::int64_t s = 0; s < n_seg; ++s) {
    double acc = 0;
    for (std::int64_t i = offs[s]; i < offs[s + 1]; ++i) {
      acc += host[static_cast<std::size_t>(i)];
      ASSERT_NEAR(out[static_cast<std::size_t>(i)], acc, 1e-9)
          << "seg=" << s << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegScanCase,
    ::testing::Combine(::testing::Values(1, 200, 256, 1000, 50000),
                       ::testing::Values(1, 2, 3)));

TEST(SegScan, SingleSegmentSpanningManyBlocks) {
  auto dev = make_device();
  const std::int64_t n = 10000;
  std::vector<double> host(n, 1.0);
  auto d_vals = dev.to_device<double>(host);
  auto keys = dev.alloc<std::int32_t>(n);
  fill(dev, keys, std::int32_t{0});
  auto out = dev.alloc<double>(n);
  segmented_inclusive_scan_by_key(dev, d_vals, keys, out);
  for (std::int64_t i = 0; i < n; ++i)
    ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     static_cast<double>(i + 1));
}

TEST(SegArgMax, PerSegmentBestWithTies) {
  auto dev = make_device();
  std::vector<double> vals{1, 5, 5, 2, /*seg1*/ 7, /*seg2 empty*/ /*seg3*/ 3, 3};
  std::vector<std::int64_t> offs{0, 4, 5, 5, 7};
  auto d_vals = dev.to_device<double>(vals);
  auto d_offs = dev.to_device<std::int64_t>(offs);
  auto bv = dev.alloc<double>(4);
  auto bi = dev.alloc<std::int64_t>(4);
  for (std::int64_t spb : {1, 3, 100}) {
    segmented_arg_max(dev, d_vals, d_offs, bv, bi, spb);
    EXPECT_EQ(bi[0], 1) << spb;  // first of the tied 5s
    EXPECT_EQ(bv[0], 5.0);
    EXPECT_EQ(bi[1], 4);
    EXPECT_EQ(bi[2], -1);  // empty segment
    EXPECT_EQ(bi[3], 5);   // first of the tied 3s
  }
}

TEST(Compact, KeepsFlaggedInOrder) {
  auto dev = make_device();
  const std::int64_t n = 10007;
  std::mt19937 rng(99);
  std::vector<std::int32_t> host(n);
  std::vector<std::uint8_t> flags(n);
  std::vector<std::int32_t> want;
  for (std::int64_t i = 0; i < n; ++i) {
    host[i] = static_cast<std::int32_t>(rng());
    flags[i] = static_cast<std::uint8_t>(rng() % 3 == 0);
    if (flags[i]) want.push_back(host[i]);
  }
  auto d_in = dev.to_device<std::int32_t>(host);
  auto d_flags = dev.to_device<std::uint8_t>(flags);
  auto d_out = dev.alloc<std::int32_t>(n);
  const std::int64_t kept = compact(dev, d_in, d_flags, d_out);
  ASSERT_EQ(kept, static_cast<std::int64_t>(want.size()));
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(d_out[i], want[i]);
}

TEST(Compact, AllAndNoneKept) {
  auto dev = make_device();
  std::vector<std::int32_t> host{1, 2, 3, 4};
  auto d_in = dev.to_device<std::int32_t>(host);
  auto d_out = dev.alloc<std::int32_t>(4);

  std::vector<std::uint8_t> all(4, 1);
  auto d_all = dev.to_device<std::uint8_t>(all);
  EXPECT_EQ(compact(dev, d_in, d_all, d_out), 4);

  std::vector<std::uint8_t> none(4, 0);
  auto d_none = dev.to_device<std::uint8_t>(none);
  EXPECT_EQ(compact(dev, d_in, d_none, d_out), 0);
}

TEST(Sort, FloatKeyMapsPreserveOrder) {
  std::vector<float> vals{-100.f, -1.5f, -0.f, 0.f, 0.25f, 1.f, 1e30f};
  for (std::size_t i = 1; i < vals.size(); ++i) {
    EXPECT_LE(float_to_ordered(vals[i - 1]), float_to_ordered(vals[i]));
  }
  for (float v : vals) {
    EXPECT_EQ(ordered_to_float(float_to_ordered(v)), v);
  }
}

TEST(Sort, CompositeKeyOrdersAttrAscValueDesc) {
  // attr ascending dominates; within an attr larger values sort first.
  EXPECT_LT(column_desc_key(0, 1.f), column_desc_key(1, 100.f));
  EXPECT_LT(column_desc_key(2, 5.f), column_desc_key(2, 3.f));
  EXPECT_LT(column_desc_key(2, 5.f), column_desc_key(2, -3.f));
}

class SortSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SortSizes, SortsRandomKeysStably) {
  auto dev = make_device();
  const auto n = static_cast<std::size_t>(GetParam());
  std::mt19937_64 rng(n);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng() % 1000;  // many duplicates to exercise stability
    vals[i] = static_cast<std::uint32_t>(i);
  }
  auto d_keys = dev.to_device<std::uint64_t>(keys);
  auto d_vals = dev.to_device<std::uint32_t>(vals);
  radix_sort_pairs(dev, d_keys, d_vals);

  std::vector<std::pair<std::uint64_t, std::uint32_t>> want(n);
  for (std::size_t i = 0; i < n; ++i) want[i] = {keys[i], vals[i]};
  std::stable_sort(want.begin(), want.end(),
                   [](auto& a, auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(d_keys[i], want[i].first) << i;
    ASSERT_EQ(d_vals[i], want[i].second) << i;  // stability
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 256, 1000, 65536));

TEST(Sort, FullWidthKeys) {
  auto dev = make_device();
  std::mt19937_64 rng(7);
  const std::size_t n = 5000;
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng();
    vals[i] = static_cast<std::uint32_t>(i);
  }
  auto d_keys = dev.to_device<std::uint64_t>(keys);
  auto d_vals = dev.to_device<std::uint32_t>(vals);
  radix_sort_pairs(dev, d_keys, d_vals, 64);
  for (std::size_t i = 1; i < n; ++i) ASSERT_LE(d_keys[i - 1], d_keys[i]);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(keys[static_cast<std::size_t>(d_vals[i])], d_keys[i]);
}

// ---- histogram partition ---------------------------------------------------

struct PartitionCase {
  std::int64_t n;
  std::int64_t n_parts;
  bool customized;
  unsigned seed;
};

class Partition : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(Partition, GroupsByPartPreservingOrder) {
  const auto p = GetParam();
  auto dev = make_device();
  std::mt19937 rng(p.seed);
  std::vector<std::int32_t> ids(p.n);
  for (auto& x : ids) {
    // ~10% dropped
    x = rng() % 10 == 0 ? -1 : static_cast<std::int32_t>(rng() % p.n_parts);
  }
  auto d_ids = dev.to_device<std::int32_t>(ids);
  auto scatter = dev.alloc<std::int64_t>(p.n);
  auto offs = dev.alloc<std::int64_t>(p.n_parts + 1);
  const auto plan =
      plan_partition(p.n, p.n_parts, /*max_counter_bytes=*/1 << 16,
                     p.customized);
  histogram_partition(dev, d_ids.span(), p.n_parts, scatter.span(),
                      offs.span(), plan);

  // Reference: stable grouping by part id.
  std::vector<std::int64_t> want(p.n, -1);
  std::vector<std::int64_t> counts(p.n_parts + 1, 0);
  for (auto id : ids)
    if (id >= 0) ++counts[id + 1];
  for (std::int64_t q = 1; q <= p.n_parts; ++q) counts[q] += counts[q - 1];
  std::vector<std::int64_t> cursor(counts.begin(), counts.end() - 1);
  for (std::int64_t i = 0; i < p.n; ++i)
    if (ids[i] >= 0) want[i] = cursor[ids[i]]++;

  for (std::int64_t i = 0; i < p.n; ++i)
    ASSERT_EQ(scatter[static_cast<std::size_t>(i)], want[i])
        << "i=" << i << " custom=" << p.customized;
  for (std::int64_t q = 0; q < p.n_parts; ++q)
    ASSERT_EQ(offs[static_cast<std::size_t>(q)], counts[q]) << q;
  ASSERT_EQ(offs[static_cast<std::size_t>(p.n_parts)], counts[p.n_parts]);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Partition,
    ::testing::Values(PartitionCase{1000, 2, true, 1},
                      PartitionCase{1000, 2, false, 2},
                      PartitionCase{50000, 64, true, 3},
                      PartitionCase{50000, 64, false, 4},
                      // enough parts to force multi-pass in naive mode
                      PartitionCase{20000, 4096, false, 5},
                      PartitionCase{20000, 4096, true, 6},
                      PartitionCase{17, 1, true, 7},
                      PartitionCase{257, 300, false, 8}));

TEST(PartitionPlan, CustomizedBoundsCounterMemory) {
  const std::size_t budget = 1 << 20;
  for (std::int64_t parts : {2, 100, 10000, 1000000}) {
    const auto plan = plan_partition(1 << 22, parts, budget, true);
    EXPECT_LE(plan.counter_bytes, budget) << parts;
    if (parts * 8 <= static_cast<std::int64_t>(budget)) {
      // The paper's formula always fits a single pass when one is possible.
      EXPECT_EQ(plan.passes, 1) << parts;
    } else {
      // Even one thread overflows -> chunked passes, still within budget.
      EXPECT_GT(plan.passes, 1) << parts;
    }
  }
}

TEST(PartitionPlan, NaiveOverflowsIntoMultiplePasses) {
  // 2^20 elements at the fixed naive workload of 16 -> 65536 threads; one
  // partition's counter column = 512 KiB, so 4096 partitions need 2048
  // passes under a 1 MiB budget while the customized plan needs one.
  const std::size_t budget = 1 << 20;
  const auto naive = plan_partition(1 << 20, 4096, budget, false);
  EXPECT_GT(naive.passes, 1);
  EXPECT_LE(naive.passes, 2);  // bounded fallback (see partition.cpp)
  EXPECT_LE(naive.counter_bytes, budget);
  const auto custom = plan_partition(1 << 20, 4096, budget, true);
  EXPECT_EQ(custom.passes, 1);
  EXPECT_GT(custom.workload, naive.workload);

  // When the matrix fits comfortably, naive keeps the fixed b = 16.
  const auto small = plan_partition(10000, 4, std::size_t{1} << 30, false);
  EXPECT_EQ(small.workload, 16);
  EXPECT_EQ(small.passes, 1);
}

TEST(PartitionPlan, CustomizedIsCheaperForManyParts) {
  auto dev = make_device();
  const std::int64_t n = 100000, parts = 2048;
  std::mt19937 rng(31);
  std::vector<std::int32_t> ids(n);
  for (auto& x : ids) x = static_cast<std::int32_t>(rng() % parts);
  auto d_ids = dev.to_device<std::int32_t>(ids);
  auto scatter = dev.alloc<std::int64_t>(n);
  auto offs = dev.alloc<std::int64_t>(parts + 1);

  histogram_partition(dev, d_ids.span(), parts, scatter.span(), offs.span(),
                      plan_partition(n, parts, 1 << 18, false));
  const double naive = dev.elapsed_seconds();
  dev.reset_timeline();
  histogram_partition(dev, d_ids.span(), parts, scatter.span(), offs.span(),
                      plan_partition(n, parts, 1 << 18, true));
  const double custom = dev.elapsed_seconds();
  EXPECT_LT(custom, naive);
}

}  // namespace
}  // namespace gbdt::prim
