// Edge-case hardening across the training stack: degenerate datasets,
// constant attributes, extreme labels, deep trees on tiny data, and the
// paper's Table I worked example pushed end to end through the trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/xgb_exact.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt {
namespace {

using device::Device;
using device::DeviceConfig;

GBDTParam tiny_param(int depth = 3, int trees = 2) {
  GBDTParam p;
  p.depth = depth;
  p.n_trees = trees;
  return p;
}

TrainReport train(const data::Dataset& ds, const GBDTParam& p) {
  Device dev(DeviceConfig::titan_x_pascal());
  return GpuGbdtTrainer(dev, p).train(ds);
}

void expect_matches_oracle(const data::Dataset& ds, GBDTParam p) {
  p.use_rle = false;
  const auto gpu = train(ds, p);
  const auto cpu = baseline::XgbExactTrainer(p).train(ds);
  ASSERT_EQ(gpu.trees.size(), cpu.trees.size());
  for (std::size_t t = 0; t < gpu.trees.size(); ++t) {
    ASSERT_TRUE(Tree::same_structure(gpu.trees[t], cpu.trees[t], 0.0))
        << gpu.trees[t].dump() << "\nvs\n"
        << cpu.trees[t].dump();
  }
}

TEST(EdgeCases, SingleAttributeDataset) {
  data::Dataset ds(1);
  for (int i = 0; i < 200; ++i) {
    const std::vector<data::Entry> row{{0, static_cast<float>(i)}};
    ds.add_instance(row, static_cast<float>(i < 100 ? -1 : 1));
  }
  const auto r = train(ds, tiny_param());
  EXPECT_GE(r.trees[0].n_leaves(), 2);
  EXPECT_LT(rmse(r.train_scores, ds.labels()), 0.6);
  expect_matches_oracle(ds, tiny_param());
}

TEST(EdgeCases, ConstantAttributeNeverSplits) {
  // Attribute 0 is constant: it has no valid split (duplicate suppression
  // kills every interior candidate); splits must use attribute 1.
  data::Dataset ds(2);
  for (int i = 0; i < 100; ++i) {
    const std::vector<data::Entry> row{{0, 5.f}, {1, static_cast<float>(i)}};
    ds.add_instance(row, static_cast<float>(i % 2));
  }
  const auto r = train(ds, tiny_param());
  for (const auto& t : r.trees) {
    for (const auto& n : t.nodes()) {
      if (!n.is_leaf()) {
        EXPECT_EQ(n.attr, 1);
      }
    }
  }
}

TEST(EdgeCases, TwoInstances) {
  data::Dataset ds(1);
  ds.add_instance(std::vector<data::Entry>{{0, 1.f}}, 10.f);
  ds.add_instance(std::vector<data::Entry>{{0, 2.f}}, -10.f);
  GBDTParam p = tiny_param(4, 3);
  p.eta = 1.0;
  p.lambda = 0.0;  // unregularized leaves fit the residual exactly
  const auto r = train(ds, p);
  // One split separates them; residuals collapse after the first tree.
  EXPECT_EQ(r.trees[0].n_leaves(), 2);
  EXPECT_NEAR(r.train_scores[0], 10.0, 1e-5);
  EXPECT_NEAR(r.train_scores[1], -10.0, 1e-5);
  EXPECT_EQ(r.trees[2].n_leaves(), 1);
  expect_matches_oracle(ds, p);
}

TEST(EdgeCases, ExtremeLabelMagnitudes) {
  data::SyntheticSpec s;
  s.n_instances = 300;
  s.n_attributes = 6;
  s.seed = 91;
  auto ds = data::generate(s);
  for (auto& y : ds.labels()) y *= 1e6f;
  const auto r = train(ds, tiny_param(4, 10));
  for (double v : r.train_scores) ASSERT_TRUE(std::isfinite(v));
  EXPECT_LT(rmse(r.train_scores, ds.labels()), 1e6);
  expect_matches_oracle(ds, tiny_param(4, 10));
}

TEST(EdgeCases, DepthFarExceedsData) {
  data::SyntheticSpec s;
  s.n_instances = 20;
  s.n_attributes = 3;
  s.seed = 92;
  const auto ds = data::generate(s);
  GBDTParam p = tiny_param(/*depth=*/12, /*trees=*/2);
  const auto r = train(ds, p);
  for (const auto& t : r.trees) {
    EXPECT_LE(t.n_leaves(), 20);  // cannot exceed the instance count
    // Every leaf covers at least one instance.
    for (const auto& n : t.nodes()) {
      if (n.is_leaf()) {
        EXPECT_GE(n.n_instances, 1);
      }
    }
  }
  expect_matches_oracle(ds, p);
}

TEST(EdgeCases, PaperTableOneEndToEnd) {
  // The running example of paper Table I trained end to end; both paths and
  // the oracle agree and the root split is reproducible.
  data::Dataset ds(4);
  ds.add_instance(std::vector<data::Entry>{{2, 0.1f}}, 0.f);
  ds.add_instance(std::vector<data::Entry>{{0, 1.2f}, {2, 0.1f}, {3, 0.6f}},
                  1.f);
  ds.add_instance(std::vector<data::Entry>{{0, 0.5f}, {1, 1.0f}}, 0.f);
  ds.add_instance(std::vector<data::Entry>{{0, 1.2f}, {2, 2.0f}}, 1.f);
  GBDTParam p = tiny_param(2, 1);
  p.eta = 1.0;
  const auto r = train(ds, p);
  const auto& root = r.trees[0].node(0);
  ASSERT_FALSE(root.is_leaf());
  EXPECT_EQ(root.attr, 0);            // a1 >= 1.2 separates {x2,x4} from {x1,x3}
  EXPECT_FLOAT_EQ(root.split_value, 1.2f);
  expect_matches_oracle(ds, p);

  GBDTParam rle = p;
  rle.force_rle = true;
  const auto r2 = train(ds, rle);
  EXPECT_TRUE(Tree::same_structure(r.trees[0], r2.trees[0], 1e-9));
}

TEST(EdgeCases, AllInstancesIdentical) {
  data::Dataset ds(2);
  for (int i = 0; i < 50; ++i) {
    ds.add_instance(std::vector<data::Entry>{{0, 1.f}, {1, 2.f}},
                    static_cast<float>(i % 2));
  }
  // No attribute separates anything: every tree is a single leaf predicting
  // toward the mean.
  const auto r = train(ds, tiny_param(4, 5));
  for (const auto& t : r.trees) EXPECT_EQ(t.n_leaves(), 1);
  for (double v : r.train_scores) EXPECT_NEAR(v, 0.5, 0.3);
}

TEST(EdgeCases, NegativeAndPositiveValuesAroundZero) {
  // Values straddling -0/+0 and denormals must sort and split consistently.
  data::Dataset ds(1);
  const float vals[] = {-1.f, -1e-30f, -0.f, 0.f, 1e-30f, 1.f};
  for (int rep = 0; rep < 10; ++rep) {
    for (int k = 0; k < 6; ++k) {
      ds.add_instance(std::vector<data::Entry>{{0, vals[k]}},
                      k < 3 ? -1.f : 1.f);
    }
  }
  GBDTParam p = tiny_param(1, 1);
  p.eta = 1.0;
  const auto r = train(ds, p);
  const auto& root = r.trees[0].node(0);
  ASSERT_FALSE(root.is_leaf());
  // -0.f == 0.f in float comparison, so the only clean boundary that
  // separates the labels lies at +1e-30 (the smallest strictly-positive
  // value on the high side).
  EXPECT_FLOAT_EQ(root.split_value, 1e-30f);
  expect_matches_oracle(ds, p);
}

TEST(EdgeCases, ManyEmptyAttributes) {
  // 100 attributes, only 2 ever present: empty columns produce empty
  // segments everywhere and must never be chosen.
  data::Dataset ds(100);
  for (int i = 0; i < 200; ++i) {
    ds.add_instance(std::vector<data::Entry>{{17, static_cast<float>(i)},
                                             {83, static_cast<float>(i % 5)}},
                    static_cast<float>(i < 100 ? 0 : 1));
  }
  const auto r = train(ds, tiny_param(3, 2));
  for (const auto& t : r.trees) {
    for (const auto& n : t.nodes()) {
      if (!n.is_leaf()) {
        EXPECT_TRUE(n.attr == 17 || n.attr == 83);
      }
    }
  }
  expect_matches_oracle(ds, tiny_param(3, 2));
}

TEST(EdgeCases, GammaEqualsBestGainPrunes) {
  // gain > gamma is strict: setting gamma to exactly the root's best gain
  // must leave the root unsplit.
  data::Dataset ds(1);
  for (int i = 0; i < 40; ++i) {
    ds.add_instance(std::vector<data::Entry>{{0, static_cast<float>(i)}},
                    static_cast<float>(i < 20 ? -1 : 1));
  }
  GBDTParam p = tiny_param(3, 1);
  const auto r = train(ds, p);
  ASSERT_FALSE(r.trees[0].node(0).is_leaf());
  const double best_gain = r.trees[0].node(0).gain;

  GBDTParam pruned = p;
  pruned.gamma = best_gain;
  const auto r2 = train(ds, pruned);
  EXPECT_TRUE(r2.trees[0].node(0).is_leaf());
}

}  // namespace
}  // namespace gbdt
