// Tests for one-vs-rest multiclass classification.
#include <gtest/gtest.h>

#include <random>

#include "core/multiclass.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt {
namespace {

using device::Device;
using device::DeviceConfig;

/// Three well-separated Gaussian-ish clusters over two informative features.
data::Dataset three_clusters(unsigned seed, std::int64_t n = 900) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> noise(0.f, 0.35f);
  const float cx[3] = {-2.f, 0.f, 2.f};
  const float cy[3] = {0.f, 2.f, -1.f};
  data::Dataset ds(4);
  for (std::int64_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(i % 3);
    const std::vector<data::Entry> row{
        {0, cx[k] + noise(rng)},
        {1, cy[k] + noise(rng)},
        {2, noise(rng)},  // pure noise features
        {3, noise(rng)},
    };
    ds.add_instance(row, static_cast<float>(k));
  }
  return ds;
}

GBDTParam small_param() {
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 10;
  return p;
}

TEST(Multiclass, LearnsThreeSeparableClasses) {
  const auto ds = three_clusters(81);
  Device dev(DeviceConfig::titan_x_pascal());
  auto [model, modeled] = MulticlassModel::train(dev, ds, 3, small_param());
  EXPECT_EQ(model.n_classes(), 3);
  EXPECT_GT(modeled, 0.0);
  EXPECT_LT(model.error_rate(ds), 0.05);
}

TEST(Multiclass, ProbabilitiesFormADistribution) {
  const auto ds = three_clusters(82, 300);
  Device dev(DeviceConfig::titan_x_pascal());
  auto [model, modeled] = MulticlassModel::train(dev, ds, 3, small_param());
  const auto proba = model.predict_proba(ds);
  ASSERT_EQ(proba.size(), 300u);
  for (const auto& row : proba) {
    ASSERT_EQ(row.size(), 3u);
    double total = 0;
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Multiclass, PredictClassIsArgmaxOfProba) {
  const auto ds = three_clusters(83, 200);
  Device dev(DeviceConfig::titan_x_pascal());
  auto [model, modeled] = MulticlassModel::train(dev, ds, 3, small_param());
  const auto proba = model.predict_proba(ds);
  const auto cls = model.predict_class(ds);
  for (std::size_t i = 0; i < cls.size(); ++i) {
    const auto arg = static_cast<int>(
        std::max_element(proba[i].begin(), proba[i].end()) -
        proba[i].begin());
    ASSERT_EQ(cls[i], arg) << i;
  }
}

TEST(Multiclass, SaveLoadRoundTrips) {
  const auto ds = three_clusters(84, 300);
  Device dev(DeviceConfig::titan_x_pascal());
  auto [model, modeled] = MulticlassModel::train(dev, ds, 3, small_param());
  model.save("/tmp/gbdt_mc");
  const auto loaded = MulticlassModel::load("/tmp/gbdt_mc", 3);
  EXPECT_EQ(loaded.predict_class(ds), model.predict_class(ds));
}

TEST(Multiclass, RejectsBadLabels) {
  Device dev(DeviceConfig::titan_x_pascal());
  data::Dataset ds(2);
  const std::vector<data::Entry> row{{0, 1.f}};
  ds.add_instance(row, 5.f);  // out of range for 3 classes
  EXPECT_THROW((void)MulticlassModel::train(dev, ds, 3, small_param()),
               std::invalid_argument);
  data::Dataset frac(2);
  frac.add_instance(row, 0.5f);  // non-integer
  EXPECT_THROW((void)MulticlassModel::train(dev, frac, 3, small_param()),
               std::invalid_argument);
  EXPECT_THROW((void)MulticlassModel::train(dev, ds, 1, small_param()),
               std::invalid_argument);
}

}  // namespace
}  // namespace gbdt
