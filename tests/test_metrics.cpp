// Ranking/classification metric tests: NDCG@k (ties, cutoff, degenerate
// queries) and AUC (tied-rank averaging, degenerate classes).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/metrics.h"

namespace gbdt {
namespace {

TEST(Ndcg, PerfectOrderingIsOne) {
  const std::vector<double> pred{3.0, 2.0, 1.0};
  const std::vector<float> label{2.f, 1.f, 0.f};
  const std::vector<std::int64_t> offsets{0, 3};
  EXPECT_DOUBLE_EQ(ndcg_at_k(pred, label, offsets, 10), 1.0);
}

TEST(Ndcg, ReversedOrderingIsBelowOne) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<float> label{2.f, 1.f, 0.f};
  const std::vector<std::int64_t> offsets{0, 3};
  const double v = ndcg_at_k(pred, label, offsets, 10);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(Ndcg, TiesBreakTowardLowerIndex) {
  // Both docs score 1.0; the tie goes to index 0 (label 0), so the label-3
  // doc lands at rank 2.
  const std::vector<double> pred{1.0, 1.0};
  const std::vector<float> label{0.f, 3.f};
  const std::vector<std::int64_t> offsets{0, 2};
  const double dcg = 0.0 / std::log2(2.0) + 7.0 / std::log2(3.0);
  const double idcg = 7.0 / std::log2(2.0);
  EXPECT_NEAR(ndcg_at_k(pred, label, offsets, 10), dcg / idcg, 1e-12);
}

TEST(Ndcg, AllSameLabelQueryScoresOne) {
  // idcg == 0: any ordering of an all-equal query is perfect by convention.
  const std::vector<double> pred{0.5, 0.1, 0.9};
  const std::vector<float> label{0.f, 0.f, 0.f};
  const std::vector<std::int64_t> offsets{0, 3};
  EXPECT_DOUBLE_EQ(ndcg_at_k(pred, label, offsets, 10), 1.0);
}

TEST(Ndcg, CutoffKOnlyCountsTopK) {
  // The top-scored doc is irrelevant; with k=1 nothing else counts.
  const std::vector<double> pred{3.0, 2.0, 1.0};
  const std::vector<float> label{0.f, 2.f, 1.f};
  const std::vector<std::int64_t> offsets{0, 3};
  EXPECT_DOUBLE_EQ(ndcg_at_k(pred, label, offsets, 1), 0.0);
  EXPECT_GT(ndcg_at_k(pred, label, offsets, 3), 0.0);
}

TEST(Ndcg, MeanOverQueries) {
  // Query 1 is ordered perfectly, query 2 has its only relevant doc at the
  // bottom of a k=1 cutoff: mean of 1.0 and 0.0.
  const std::vector<double> pred{2.0, 1.0, /*q2*/ 2.0, 1.0};
  const std::vector<float> label{1.f, 0.f, /*q2*/ 0.f, 1.f};
  const std::vector<std::int64_t> offsets{0, 2, 4};
  EXPECT_DOUBLE_EQ(ndcg_at_k(pred, label, offsets, 1), 0.5);
}

TEST(Ndcg, SingleDocQuery) {
  const std::vector<double> pred{0.3};
  const std::vector<float> label{2.f};
  const std::vector<std::int64_t> offsets{0, 1};
  EXPECT_DOUBLE_EQ(ndcg_at_k(pred, label, offsets, 10), 1.0);
}

TEST(Auc, PerfectSeparationIsOne) {
  const std::vector<double> pred{0.9, 0.8, 0.2, 0.1};
  const std::vector<float> label{1.f, 1.f, 0.f, 0.f};
  EXPECT_DOUBLE_EQ(auc(pred, label), 1.0);
}

TEST(Auc, ReversedSeparationIsZero) {
  const std::vector<double> pred{0.1, 0.2, 0.8, 0.9};
  const std::vector<float> label{1.f, 1.f, 0.f, 0.f};
  EXPECT_DOUBLE_EQ(auc(pred, label), 0.0);
}

TEST(Auc, AllTiedScoresIsHalf) {
  const std::vector<double> pred{0.5, 0.5, 0.5, 0.5};
  const std::vector<float> label{1.f, 0.f, 1.f, 0.f};
  EXPECT_DOUBLE_EQ(auc(pred, label), 0.5);
}

TEST(Auc, TiedRunAveragesRanks) {
  // Scores {1,1,0,0}, labels {1,0,1,0}: each tied pair contributes half a
  // concordant pair -> 0.5 exactly.
  const std::vector<double> pred{1.0, 1.0, 0.0, 0.0};
  const std::vector<float> label{1.f, 0.f, 1.f, 0.f};
  EXPECT_DOUBLE_EQ(auc(pred, label), 0.5);
}

TEST(Auc, PartialTies) {
  // pos at 0.8 and 0.5, neg at 0.5 and 0.2: the 0.5 tie is half-credit.
  // Pairs: (0.8>0.5)=1, (0.8>0.2)=1, (0.5~0.5)=0.5, (0.5>0.2)=1 -> 3.5/4.
  const std::vector<double> pred{0.8, 0.5, 0.5, 0.2};
  const std::vector<float> label{1.f, 1.f, 0.f, 0.f};
  EXPECT_DOUBLE_EQ(auc(pred, label), 3.5 / 4.0);
}

TEST(Auc, DegenerateSingleClassIsHalf) {
  const std::vector<double> pred{0.9, 0.1};
  EXPECT_DOUBLE_EQ(auc(pred, std::vector<float>{1.f, 1.f}), 0.5);
  EXPECT_DOUBLE_EQ(auc(pred, std::vector<float>{0.f, 0.f}), 0.5);
  EXPECT_DOUBLE_EQ(auc(std::vector<double>{}, std::vector<float>{}), 0.5);
}

TEST(Auc, LabelThresholdAtHalf) {
  // Labels above 0.5 count as positive (probability-style labels work).
  const std::vector<double> pred{0.9, 0.1};
  const std::vector<float> label{0.8f, 0.2f};
  EXPECT_DOUBLE_EQ(auc(pred, label), 1.0);
}

}  // namespace
}  // namespace gbdt
