// The serving layer: batched-vs-single-row bitwise equivalence across
// losses and shard configurations, queue backpressure and drain semantics,
// hot-swap races (run under TSan in the sanitizer lanes), and the
// torn-swap fault injection proving the snapshot fingerprint detector can
// actually fire.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "core/gbdt.h"
#include "core/predictor.h"
#include "data/synthetic.h"
#include "serve/percentile.h"
#include "serve/request_queue.h"
#include "serve/service.h"
#include "serve/shard_scorer.h"
#include "serve/snapshot.h"
#include "testing/invariants.h"

namespace {

using namespace gbdt;
using serve::OverflowPolicy;
using serve::PredictionService;
using serve::RequestQueue;
using serve::Response;
using serve::ServeConfig;
using serve::ShardMode;
using serve::ShardScorer;

data::Dataset make_data(std::int64_t n, std::int64_t d, bool binary,
                        unsigned seed) {
  data::SyntheticSpec spec;
  spec.n_instances = n;
  spec.n_attributes = d;
  spec.density = 0.8;
  spec.binary_labels = binary;
  spec.seed = seed;
  return data::generate(spec);
}

GBDTModel train_model(const data::Dataset& ds, LossKind loss, int trees = 8,
                      unsigned = 0) {
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.n_trees = trees;
  p.depth = 3;
  p.loss = loss;
  return GBDTModel::train(dev, ds, p).first;
}

std::vector<double> offline_scores(const GBDTModel& m,
                                   const data::Dataset& ds) {
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  return predict_on_device(dev, m.trees(), m.base_score(), ds);
}

/// Routes every row of `ds` through the service's batched path.
std::vector<double> served_scores(PredictionService& svc,
                                  const data::Dataset& ds) {
  std::vector<std::future<Response>> futs;
  futs.reserve(static_cast<std::size_t>(ds.n_instances()));
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    auto row = ds.instance(i);
    auto f = svc.submit({row.begin(), row.end()});
    EXPECT_TRUE(f.has_value());
    futs.push_back(std::move(*f));
  }
  std::vector<double> got;
  got.reserve(futs.size());
  for (auto& f : futs) got.push_back(f.get().score);
  return got;
}

// ---- bitwise equivalence ---------------------------------------------------

TEST(ServeEquivalence, BatchedShardedAndRowPathsMatchOfflineBitwise) {
  const auto ds = make_data(150, 9, false, 11);
  const auto binary_ds = make_data(150, 9, true, 12);
  const std::vector<std::pair<const data::Dataset*, LossKind>> problems = {
      {&ds, LossKind::kSquaredError}, {&binary_ds, LossKind::kLogistic}};

  for (const auto& [data, loss] : problems) {
    const GBDTModel model = train_model(*data, loss);
    const auto offline = offline_scores(model, *data);
    const RowPredictor row_pred(model.trees(), model.base_score());

    for (const int shards : {1, 2, 3}) {
      for (const ShardMode mode : {ShardMode::kReplicate,
                                   ShardMode::kTreeShard}) {
        for (const std::size_t max_batch : {std::size_t{1}, std::size_t{7},
                                            std::size_t{64}}) {
          ServeConfig cfg;
          cfg.n_shards = shards;
          cfg.mode = mode;
          cfg.max_batch = max_batch;
          cfg.max_wait_ticks = 1;
          PredictionService svc(model, cfg);
          const auto got = served_scores(svc, *data);
          svc.shutdown();
          ASSERT_EQ(got.size(), offline.size());
          for (std::size_t i = 0; i < got.size(); ++i) {
            // Bitwise: the serving relay reproduces the offline addition
            // order exactly, so == (not near) is the contract.
            ASSERT_EQ(got[i], offline[i])
                << "row " << i << " shards=" << shards
                << " mode=" << (mode == ShardMode::kReplicate ? "rep" : "tree")
                << " max_batch=" << max_batch;
          }
        }
      }
    }

    // Single-row fast path, both standalone and through the service.
    ServeConfig cfg;
    PredictionService svc(model, cfg);
    for (std::int64_t i = 0; i < data->n_instances(); ++i) {
      const auto iu = static_cast<std::size_t>(i);
      ASSERT_EQ(row_pred.score(data->instance(i)), offline[iu]);
      ASSERT_EQ(svc.predict_row(data->instance(i)).score, offline[iu]);
    }
  }
}

TEST(ServeEquivalence, OneVsRestMulticlassServesEachClassBitwise) {
  // Three-class one-vs-rest: each class's binary model is served
  // independently and must match its offline predictor bit for bit.
  auto ds = make_data(120, 6, false, 21);
  for (std::size_t i = 0; i < ds.labels().size(); ++i) {
    ds.labels()[i] = static_cast<float>(i % 3);
  }
  for (int cls = 0; cls < 3; ++cls) {
    data::Dataset one_vs_rest = ds;
    for (auto& y : one_vs_rest.labels()) {
      y = y == static_cast<float>(cls) ? 1.0f : 0.0f;
    }
    const GBDTModel model = train_model(one_vs_rest, LossKind::kLogistic, 5);
    const auto offline = offline_scores(model, ds);
    ServeConfig cfg;
    cfg.n_shards = 2;
    cfg.mode = ShardMode::kTreeShard;
    cfg.max_batch = 16;
    PredictionService svc(model, cfg);
    const auto got = served_scores(svc, ds);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], offline[i]) << "class " << cls << " row " << i;
    }
  }
}

TEST(ServeEquivalence, SliceForestRelayMatchesWholeForest) {
  const auto ds = make_data(80, 5, false, 31);
  const GBDTModel model = train_model(ds, LossKind::kSquaredError, 7);
  const auto offline = offline_scores(model, ds);
  auto snap = serve::make_snapshot(model, 1);
  for (const int shards : {2, 3, 7}) {
    ShardScorer scorer(snap, shards, ShardMode::kTreeShard,
                       device::DeviceConfig::titan_x_pascal());
    const auto got = scorer.score_batch(ds);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], offline[i]) << "shards=" << shards << " row " << i;
    }
  }
}

// ---- queue semantics -------------------------------------------------------

TEST(ServeQueue, RejectPolicyShedsLoadWhenFull) {
  RequestQueue<int> q(3, OverflowPolicy::kReject);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_FALSE(q.push(4));  // full: shed
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.size(), 3u);

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 10, std::chrono::milliseconds(1)), 3u);
  EXPECT_TRUE(q.push(5));  // space again
}

TEST(ServeQueue, BlockPolicyAppliesBackpressureUntilConsumed) {
  RequestQueue<int> q(2, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));

  std::atomic<bool> third_admitted{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // blocks until the consumer frees a slot
    third_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_admitted.load());  // still blocked: queue full

  std::vector<int> out;
  EXPECT_GE(q.pop_batch(out, 1, std::chrono::milliseconds(1)), 1u);
  producer.join();
  EXPECT_TRUE(third_admitted.load());
  EXPECT_EQ(q.rejected(), 0u);
}

TEST(ServeQueue, PopBatchFlushesOnMaxBatchOrDeadline) {
  RequestQueue<int> q(16, OverflowPolicy::kBlock);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.push(i));

  // max_batch reached: returns immediately with exactly max items.
  std::vector<int> two;
  EXPECT_EQ(q.pop_batch(two, 2, std::chrono::seconds(10)), 2u);

  // Deadline flush: fewer than max items in hand, the wait must end at the
  // deadline rather than block for more.
  std::vector<int> rest;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_batch(rest, 8, std::chrono::milliseconds(30)), 1u);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
}

TEST(ServeQueue, CloseWakesProducersAndDrainsConsumers) {
  RequestQueue<int> q(1, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.push(1));
  std::thread blocked([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  blocked.join();

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4, std::chrono::milliseconds(1)), 1u);  // drains
  EXPECT_EQ(q.pop_batch(out, 4, std::chrono::milliseconds(1)), 0u);  // done
  EXPECT_FALSE(q.push(7));
}

TEST(ServeService, ShutdownDrainsEveryAdmittedRequest) {
  const auto ds = make_data(200, 6, false, 41);
  const GBDTModel model = train_model(ds, LossKind::kSquaredError, 4);
  ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_ticks = 100;  // long flush window: shutdown must not wait it out
  cfg.n_workers = 2;
  PredictionService svc(model, cfg);

  std::vector<std::future<Response>> futs;
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    auto row = ds.instance(i);
    auto f = svc.submit({row.begin(), row.end()});
    ASSERT_TRUE(f.has_value());
    futs.push_back(std::move(*f));
  }
  svc.shutdown();
  // Every admitted request has a fulfilled future — nothing dropped.
  const auto offline = offline_scores(model, ds);
  for (std::size_t i = 0; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futs[i].get().score, offline[i]);
  }
  EXPECT_EQ(svc.completed(), static_cast<std::uint64_t>(ds.n_instances()));
  EXPECT_FALSE(svc.submit({}).has_value());  // closed: no new admissions
}

TEST(ServeService, RejectPolicySurfacesAsNulloptNotDrop) {
  const auto ds = make_data(60, 5, false, 51);
  const GBDTModel model = train_model(ds, LossKind::kSquaredError, 3);
  ServeConfig cfg;
  cfg.queue_capacity = 2;
  cfg.policy = OverflowPolicy::kReject;
  cfg.max_batch = 2;
  cfg.max_wait_ticks = 1;
  PredictionService svc(model, cfg);

  std::uint64_t admitted = 0;
  std::vector<std::future<Response>> futs;
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    auto row = ds.instance(i);
    auto f = svc.submit({row.begin(), row.end()});
    if (f) {
      ++admitted;
      futs.push_back(std::move(*f));
    }
  }
  svc.shutdown();
  for (auto& f : futs) (void)f.get();  // every admitted request completes
  EXPECT_EQ(svc.completed(), admitted);
  EXPECT_EQ(svc.rejected() + svc.submitted(),
            static_cast<std::uint64_t>(ds.n_instances()));
}

// ---- hot swap --------------------------------------------------------------

TEST(ServeHotSwap, ResponsesAttributableToExactlyOnePublishedVersion) {
  const auto ds = make_data(100, 6, false, 61);
  const GBDTModel model_a = train_model(ds, LossKind::kSquaredError, 6);
  const GBDTModel model_b = train_model(ds, LossKind::kSquaredError, 3);

  // Per-version offline references: odd versions serve A, even serve B.
  const auto ref_a = offline_scores(model_a, ds);
  const auto ref_b = offline_scores(model_b, ds);

  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_ticks = 1;
  cfg.n_workers = 2;
  cfg.n_shards = 2;
  PredictionService svc(model_a, cfg);

  constexpr int kProducers = 4;
  constexpr int kRowsPerProducer = 60;
  constexpr int kSwaps = 12;
  std::atomic<std::uint64_t> max_version{1};

  std::vector<std::thread> producers;
  std::vector<std::vector<std::pair<std::int64_t, Response>>> responses(
      kProducers);
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int k = 0; k < kRowsPerProducer; ++k) {
        const std::int64_t i = (p * 37 + k) % ds.n_instances();
        if (k % 2 == 0) {
          auto f = svc.submit(
              {ds.instance(i).begin(), ds.instance(i).end()});
          if (f) responses[static_cast<std::size_t>(p)].emplace_back(
              i, f->get());
        } else {
          responses[static_cast<std::size_t>(p)].emplace_back(
              i, svc.predict_row(ds.instance(i)));
        }
      }
    });
  }
  std::thread swapper([&] {
    for (int s = 0; s < kSwaps; ++s) {
      const auto snap = svc.publish(s % 2 == 0 ? model_b : model_a);
      max_version.store(snap->version);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& t : producers) t.join();
  swapper.join();
  svc.shutdown();

  // Every response is attributable to exactly one published version, and
  // its score is bitwise that version's model output for the row — a torn
  // or mixed-version batch could not produce this.
  std::uint64_t seen_max = 0;
  for (const auto& per_producer : responses) {
    for (const auto& [row, resp] : per_producer) {
      ASSERT_GE(resp.version, 1u);
      ASSERT_LE(resp.version, max_version.load());
      const auto& ref = resp.version % 2 == 1 ? ref_a : ref_b;
      ASSERT_EQ(resp.score, ref[static_cast<std::size_t>(row)])
          << "row " << row << " version " << resp.version;
      seen_max = std::max(seen_max, resp.version);
    }
  }
  EXPECT_EQ(svc.swaps(), static_cast<std::uint64_t>(kSwaps) + 1);
  EXPECT_GT(seen_max, 0u);
}

// ---- torn-swap fault injection ---------------------------------------------

class ServeTornSwap : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = gbdt::testing::invariants_enabled();
    gbdt::testing::fault_injection() = {};
  }
  void TearDown() override {
    gbdt::testing::fault_injection() = {};
    gbdt::testing::set_invariants_enabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(ServeTornSwap, DetectorFiresOnBothPathsWhenArmed) {
  const auto ds = make_data(40, 5, false, 71);
  const GBDTModel model = train_model(ds, LossKind::kSquaredError, 3);

  gbdt::testing::set_invariants_enabled(true);
  gbdt::testing::fault_injection().serve_torn_swap = true;

  // The fault corrupts a leaf weight after fingerprinting, so the snapshot
  // itself is torn; both scoring paths must refuse to serve from it.
  auto snap = serve::make_snapshot(model, 1);
  EXPECT_THROW(snap->verify(), gbdt::testing::InvariantViolation);

  ServeConfig cfg;
  cfg.max_batch = 4;
  PredictionService svc(model, cfg);
  EXPECT_THROW((void)svc.predict_row(ds.instance(0)),
               gbdt::testing::InvariantViolation);
  auto f = svc.submit({ds.instance(0).begin(), ds.instance(0).end()});
  ASSERT_TRUE(f.has_value());
  EXPECT_THROW((void)f->get(), gbdt::testing::InvariantViolation);
  svc.shutdown();
}

TEST_F(ServeTornSwap, ArmedFaultIsInertWhileInvariantsDisabled) {
  const auto ds = make_data(40, 5, false, 72);
  const GBDTModel model = train_model(ds, LossKind::kSquaredError, 3);

  gbdt::testing::set_invariants_enabled(false);
  gbdt::testing::fault_injection().serve_torn_swap = true;

  const auto offline = offline_scores(model, ds);
  ServeConfig cfg;
  PredictionService svc(model, cfg);
  EXPECT_EQ(svc.predict_row(ds.instance(0)).score, offline[0]);
  auto f = svc.submit({ds.instance(0).begin(), ds.instance(0).end()});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->get().score, offline[0]);
  svc.shutdown();
}

TEST(ServePercentile, BatchedPercentilesMatchSinglePCalls) {
  const std::vector<double> xs{9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0, 4.0, 6.0};
  const auto pcts = serve::percentiles(xs, {0.0, 50.0, 95.0, 99.0, 100.0});
  ASSERT_EQ(pcts.size(), 5u);
  EXPECT_EQ(pcts[0], serve::percentile(xs, 0.0));
  EXPECT_EQ(pcts[1], serve::percentile(xs, 50.0));
  EXPECT_EQ(pcts[2], serve::percentile(xs, 95.0));
  EXPECT_EQ(pcts[3], serve::percentile(xs, 99.0));
  EXPECT_EQ(pcts[4], 9.0);
  EXPECT_EQ(pcts[1], 5.0);  // nearest-rank median of 1..9

  const auto empty = serve::percentiles({}, {50.0, 99.0});
  EXPECT_EQ(empty, (std::vector<double>{0.0, 0.0}));
}

TEST_F(ServeTornSwap, CleanSnapshotVerifiesWithChecksArmed) {
  const auto ds = make_data(40, 5, false, 73);
  const GBDTModel model = train_model(ds, LossKind::kSquaredError, 3);
  gbdt::testing::set_invariants_enabled(true);
  auto snap = serve::make_snapshot(model, 1);
  EXPECT_NO_THROW(snap->verify());
  const auto offline = offline_scores(model, ds);
  ServeConfig cfg;
  PredictionService svc(model, cfg);
  EXPECT_EQ(svc.predict_row(ds.instance(0)).score, offline[0]);
  svc.shutdown();
}

}  // namespace
