// End-to-end tests of the `gbdt` command line: every subcommand is driven
// through a real subprocess against generated LibSVM files.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef GBDT_CLI_PATH
#error "GBDT_CLI_PATH must be defined by the build"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run(const std::string& args) {
  const std::string cmd = std::string(GBDT_CLI_PATH) + " " + args +
                          " > /tmp/gbdt_cli_out.txt 2>&1";
  CommandResult r;
  const int status = std::system(cmd.c_str());
  r.exit_code = WEXITSTATUS(status);
  std::ifstream in("/tmp/gbdt_cli_out.txt");
  std::stringstream buf;
  buf << in.rdbuf();
  r.output = buf.str();
  return r;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ASSERT_EQ(run("synth --out=/tmp/gbdt_cli_train.libsvm --instances=600 "
                  "--attributes=10 --density=0.8 --seed=5")
                  .exit_code,
              0);
    ASSERT_EQ(run("synth --out=/tmp/gbdt_cli_valid.libsvm --instances=200 "
                  "--attributes=10 --density=0.8 --seed=5")
                  .exit_code,
              0);
  }
};

TEST_F(CliTest, HelpListsSubcommands) {
  const auto r = run("help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* sub :
       {"train", "predict", "eval", "dump", "importance", "synth"}) {
    EXPECT_NE(r.output.find(sub), std::string::npos) << sub;
  }
}

TEST_F(CliTest, NoArgsFailsWithUsage) {
  const auto r = run("");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("subcommands"), std::string::npos);
}

TEST_F(CliTest, TrainPredictEvalRoundTrip) {
  auto r = run("train --data=/tmp/gbdt_cli_train.libsvm "
               "--model=/tmp/gbdt_cli.model --trees=8 --depth=3");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("trained 8 trees"), std::string::npos);
  EXPECT_NE(r.output.find("modeled device time"), std::string::npos);

  r = run("predict --data=/tmp/gbdt_cli_train.libsvm "
          "--model=/tmp/gbdt_cli.model --output=/tmp/gbdt_cli_pred.txt");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream pred("/tmp/gbdt_cli_pred.txt");
  int lines = 0;
  std::string line;
  while (std::getline(pred, line)) ++lines;
  EXPECT_EQ(lines, 600);

  r = run("eval --data=/tmp/gbdt_cli_train.libsvm --model=/tmp/gbdt_cli.model");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("rmse:"), std::string::npos);
}

TEST_F(CliTest, TrainWithValidationAndEarlyStopping) {
  const auto r =
      run("train --data=/tmp/gbdt_cli_train.libsvm "
          "--valid=/tmp/gbdt_cli_valid.libsvm --early-stopping=3 "
          "--model=/tmp/gbdt_cli_es.model --trees=100 --depth=6 --eta=0.8");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("validation rmse"), std::string::npos);
}

TEST_F(CliTest, DumpShowsTreeStructure) {
  const auto r = run("dump --model=/tmp/gbdt_cli.model --tree=0");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("booster[0]"), std::string::npos);
  EXPECT_NE(r.output.find("leaf="), std::string::npos);
  EXPECT_EQ(r.output.find("booster[1]"), std::string::npos);  // filtered
}

TEST_F(CliTest, ImportanceRanksFeatures) {
  const auto r = run("importance --model=/tmp/gbdt_cli.model --kind=gain");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("f"), std::string::npos);
  // Scores are descending.
  std::istringstream in(r.output);
  std::string name;
  double prev = 1e18, v = 0;
  while (in >> name >> v) {
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST_F(CliTest, LogisticLossFlag) {
  ASSERT_EQ(run("synth --out=/tmp/gbdt_cli_bin.libsvm --instances=400 "
                "--attributes=8 --binary --seed=9")
                .exit_code,
            0);
  const auto r = run("train --data=/tmp/gbdt_cli_bin.libsvm "
                     "--model=/tmp/gbdt_cli_bin.model --trees=5 --depth=3 "
                     "--loss=logistic");
  ASSERT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(CliTest, PaperDatasetSynth) {
  const auto r = run("synth --out=/tmp/gbdt_cli_covtype.libsvm "
                     "--paper=covtype --scale=0.01");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("x 54"), std::string::npos);
}

TEST_F(CliTest, BadInputsFailGracefully) {
  EXPECT_NE(run("train --model=/tmp/x.model").exit_code, 0);  // no data
  EXPECT_NE(run("train --data=/nonexistent --model=/tmp/x.model").exit_code,
            0);
  EXPECT_NE(run("predict --data=/tmp/gbdt_cli_train.libsvm "
                "--model=/nonexistent")
                .exit_code,
            0);
  EXPECT_NE(run("frobnicate").exit_code, 0);
  EXPECT_NE(run("train --data=a --model=b --loss=hinge").exit_code, 0);
  EXPECT_NE(run("synth --out=/tmp/x --paper=unknown-set").exit_code, 0);
}

TEST_F(CliTest, DeviceSelection) {
  for (const char* dev : {"titanx", "p100", "k20"}) {
    const auto r = run(std::string("train --data=/tmp/gbdt_cli_train.libsvm "
                                   "--model=/tmp/gbdt_cli_dev.model "
                                   "--trees=2 --depth=2 --device=") +
                       dev);
    EXPECT_EQ(r.exit_code, 0) << dev << ": " << r.output;
  }
  EXPECT_NE(run("train --data=/tmp/gbdt_cli_train.libsvm "
                "--model=/tmp/x.model --device=voodoo2")
                .exit_code,
            0);
}

}  // namespace
