// Tests for the modeled ring/tree/all-to-one allreduce: bitwise fold
// equivalence across algorithms (the property the multi-GPU trainer's
// bitwise-forest guarantee rests on), chunking on adversarial sizes, byte
// and message accounting, the GBDT_ALLTOONE escape hatch, the cost ordering
// ring < all-to-one the acceptance gate requires, and a race-detector-armed
// clean run over the comm streams.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "analysis/hb_race.h"
#include "device/device_context.h"
#include "multigpu/allreduce.h"

namespace gbdt::multigpu {
namespace {

using device::DeviceConfig;
using device::kDefaultStream;

// K simulated devices, each with a dedicated comm stream.  `with_ready`
// records a default-stream event per shard so the legs exercise the
// ready-event wait edge.
struct Net {
  std::vector<std::unique_ptr<device::Device>> devs;
  std::vector<ShardLink> links;
};

Net make_net(int n_shards, bool with_ready = false) {
  Net net;
  for (int k = 0; k < n_shards; ++k) {
    auto dev = std::make_unique<device::Device>(DeviceConfig::titan_x_pascal());
    ShardLink link;
    link.dev = dev.get();
    link.comm_stream = dev->stream();
    if (with_ready) link.ready_event = dev->record_event(kDefaultStream);
    net.links.push_back(link);
    net.devs.push_back(std::move(dev));
  }
  return net;
}

// Deterministic, shard-distinct payloads.
std::vector<std::vector<std::int64_t>> make_payloads(int n_shards,
                                                     std::size_t n) {
  std::vector<std::vector<std::int64_t>> out(
      static_cast<std::size_t>(n_shards));
  for (int k = 0; k < n_shards; ++k) {
    auto& p = out[static_cast<std::size_t>(k)];
    p.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = static_cast<std::int64_t>((k + 1) * 1000003) ^
             static_cast<std::int64_t>(i * 37 + 11);
    }
  }
  return out;
}

std::vector<std::span<std::int64_t>> spans_of(
    std::vector<std::vector<std::int64_t>>& storage) {
  std::vector<std::span<std::int64_t>> s;
  s.reserve(storage.size());
  for (auto& v : storage) s.emplace_back(v);
  return s;
}

const auto kSum = [](std::int64_t a, std::int64_t b) { return a + b; };

// Runs one collective on fresh copies of `base` and returns (report, result
// seen by every shard).
struct RunOut {
  AllreduceReport rep;
  std::vector<std::int64_t> result;
};

RunOut run(AllreduceAlgo algo, int n_shards,
           const std::vector<std::vector<std::int64_t>>& base,
           const Interconnect& net_cfg = Interconnect::pcie3()) {
  Net net = make_net(n_shards);
  auto storage = base;
  auto payloads = spans_of(storage);
  RunOut out;
  out.rep = allreduce<std::int64_t>("comm_test", net_cfg, algo, net.links,
                                    payloads, kSum);
  out.result = storage[0];
  // Every shard must hold the same reduced payload.
  for (const auto& s : storage) EXPECT_EQ(s, out.result);
  return out;
}

TEST(Allreduce, SingleShardIsNoOp) {
  Net net = make_net(1);
  std::vector<std::vector<std::int64_t>> storage{{1, 2, 3}};
  auto payloads = spans_of(storage);
  const auto rep = allreduce<std::int64_t>(
      "comm_test", Interconnect::pcie3(), AllreduceAlgo::kRing, net.links,
      payloads, kSum);
  EXPECT_EQ(rep.bytes, 0u);
  EXPECT_EQ(rep.messages, 0u);
  EXPECT_EQ(rep.seconds, 0.0);
  EXPECT_EQ(storage[0], (std::vector<std::int64_t>{1, 2, 3}));
}

// The trainer's bitwise-forest guarantee requires ring == tree == all-to-one
// for every order-independent combine.  Sweep adversarial K x n shapes,
// including payloads smaller than K (empty ring chunks) and non-divisible
// chunking.
TEST(Allreduce, AlgorithmsFoldBitwiseIdentical) {
  for (int K : {2, 3, 4, 5, 8}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                          std::size_t{64}, std::size_t{1000}}) {
      const auto base = make_payloads(K, n);
      std::vector<std::int64_t> expect(n, 0);
      for (const auto& p : base) {
        for (std::size_t i = 0; i < n; ++i) expect[i] += p[i];
      }
      const auto a2o = run(AllreduceAlgo::kAllToOne, K, base);
      const auto ring = run(AllreduceAlgo::kRing, K, base);
      const auto tree = run(AllreduceAlgo::kTree, K, base);
      EXPECT_EQ(a2o.result, expect) << "K=" << K << " n=" << n;
      EXPECT_EQ(ring.result, expect) << "K=" << K << " n=" << n;
      EXPECT_EQ(tree.result, expect) << "K=" << K << " n=" << n;
    }
  }
}

// double-max is the root-statistics combine; bitwise identity must hold for
// floating payloads too (max is order-independent, unlike double sum).
TEST(Allreduce, DoubleMaxCombineBitwiseIdentical) {
  const int K = 4;
  const std::size_t n = 7;
  std::vector<std::vector<double>> base(K);
  for (int k = 0; k < K; ++k) {
    base[static_cast<std::size_t>(k)].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      base[static_cast<std::size_t>(k)][i] =
          0.1 * static_cast<double>(k + 1) + 1e-9 * static_cast<double>(i);
    }
  }
  const auto max2 = [](double a, double b) { return a > b ? a : b; };
  std::array<std::vector<double>, 3> results;
  int r = 0;
  for (auto algo :
       {AllreduceAlgo::kAllToOne, AllreduceAlgo::kRing, AllreduceAlgo::kTree}) {
    Net net = make_net(K);
    auto storage = base;
    std::vector<std::span<double>> payloads;
    for (auto& v : storage) payloads.emplace_back(v);
    (void)allreduce<double>("comm_test", Interconnect::pcie3(), algo,
                            net.links, payloads, max2);
    results[static_cast<std::size_t>(r++)] = storage[0];
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Allreduce, EmptyPayloadMovesNothing) {
  const auto base = make_payloads(4, 0);
  for (auto algo :
       {AllreduceAlgo::kAllToOne, AllreduceAlgo::kRing, AllreduceAlgo::kTree}) {
    const auto out = run(algo, 4, base);
    EXPECT_EQ(out.rep.bytes, 0u) << allreduce_algo_name(algo);
    EXPECT_EQ(out.rep.messages, 0u) << allreduce_algo_name(algo);
    EXPECT_EQ(out.rep.seconds, 0.0) << allreduce_algo_name(algo);
  }
}

TEST(Allreduce, ChunkRangesPartitionAdversarialSizes) {
  // n=7, K=4: chunks {0,1} {1,3} {3,5} {5,7} — cover, disjoint, non-uniform.
  std::size_t cursor = 0;
  for (int c = 0; c < 4; ++c) {
    const auto r = detail::chunk_range(7, 4, c);
    EXPECT_EQ(r.lo, cursor);
    EXPECT_GE(r.hi, r.lo);
    cursor = r.hi;
  }
  EXPECT_EQ(cursor, 7u);
  // n=3, K=8: some chunks are empty, union still covers.
  cursor = 0;
  std::size_t non_empty = 0;
  for (int c = 0; c < 8; ++c) {
    const auto r = detail::chunk_range(3, 8, c);
    EXPECT_EQ(r.lo, cursor);
    cursor = r.hi;
    non_empty += (r.hi > r.lo) ? 1 : 0;
  }
  EXPECT_EQ(cursor, 3u);
  EXPECT_EQ(non_empty, 3u);
}

TEST(Allreduce, TreeRounds) {
  EXPECT_EQ(detail::tree_rounds(1), 0);
  EXPECT_EQ(detail::tree_rounds(2), 1);
  EXPECT_EQ(detail::tree_rounds(3), 2);
  EXPECT_EQ(detail::tree_rounds(4), 2);
  EXPECT_EQ(detail::tree_rounds(5), 3);
  EXPECT_EQ(detail::tree_rounds(8), 3);
}

// Every algorithm moves exactly 2(K-1)·P payload bytes (K divides n so the
// ring chunks are uniform).
TEST(Allreduce, BytesConservedAcrossAlgorithms) {
  const int K = 4;
  const std::size_t n = 64;
  const auto base = make_payloads(K, n);
  const std::uint64_t want =
      2u * static_cast<std::uint64_t>(K - 1) * n * sizeof(std::int64_t);
  for (auto algo :
       {AllreduceAlgo::kAllToOne, AllreduceAlgo::kRing, AllreduceAlgo::kTree}) {
    const auto out = run(algo, K, base);
    EXPECT_EQ(out.rep.bytes, want) << allreduce_algo_name(algo);
  }
}

TEST(Allreduce, MessageCounts) {
  const auto base = make_payloads(8, 64);
  // all-to-one: K-1 gathers + K-1 broadcasts.
  EXPECT_EQ(run(AllreduceAlgo::kAllToOne, 8, base).rep.messages, 14u);
  // tree (K = power of two): K-1 reduce legs + K-1 broadcast legs.
  EXPECT_EQ(run(AllreduceAlgo::kTree, 8, base).rep.messages, 14u);
  // ring: K shards x (K-1) steps, twice (reduce-scatter + allgather).
  EXPECT_EQ(run(AllreduceAlgo::kRing, 8, base).rep.messages, 2u * 8u * 7u);
}

// The acceptance gate: ring strictly beats all-to-one in modeled seconds at
// K >= 4.  All-to-one serialises 2(K-1) full payloads on shard 0's stream;
// the ring spreads 2(K-1) chunk-sized legs across every shard.
TEST(Allreduce, RingBeatsAllToOneAtFourShards) {
  for (int K : {4, 8}) {
    const auto base = make_payloads(K, 1 << 14);
    const auto a2o = run(AllreduceAlgo::kAllToOne, K, base);
    const auto ring = run(AllreduceAlgo::kRing, K, base);
    const auto tree = run(AllreduceAlgo::kTree, K, base);
    EXPECT_LT(ring.rep.seconds, a2o.rep.seconds) << "K=" << K;
    EXPECT_LT(tree.rep.seconds, a2o.rep.seconds) << "K=" << K;
  }
}

TEST(Allreduce, NvlinkBeatsPcieOnSamePayload) {
  const auto base = make_payloads(4, 1 << 12);
  const auto pcie = run(AllreduceAlgo::kRing, 4, base, Interconnect::pcie3());
  const auto nvl = run(AllreduceAlgo::kRing, 4, base, Interconnect::nvlink());
  EXPECT_EQ(pcie.rep.bytes, nvl.rep.bytes);
  EXPECT_LT(nvl.rep.seconds, pcie.rep.seconds);
}

// GBDT_ALLTOONE forces the legacy schedule regardless of the requested
// algorithm: a forced kRing run must be indistinguishable from an explicit
// kAllToOne run, result and accounting alike.
TEST(Allreduce, AlltooneHatchForcesLegacySchedule) {
  const auto base = make_payloads(4, 100);
  const auto a2o = run(AllreduceAlgo::kAllToOne, 4, base);
  set_alltoone_forced(1);
  const auto forced = run(AllreduceAlgo::kRing, 4, base);
  set_alltoone_forced(-1);  // back to the environment
  EXPECT_EQ(forced.result, a2o.result);
  EXPECT_EQ(forced.rep.bytes, a2o.rep.bytes);
  EXPECT_EQ(forced.rep.messages, a2o.rep.messages);
  EXPECT_EQ(forced.rep.seconds, a2o.rep.seconds);
}

TEST(Allreduce, ParseAndNameRoundTrip) {
  AllreduceAlgo a;
  ASSERT_TRUE(parse_allreduce_algo("ring", a));
  EXPECT_EQ(a, AllreduceAlgo::kRing);
  ASSERT_TRUE(parse_allreduce_algo("tree", a));
  EXPECT_EQ(a, AllreduceAlgo::kTree);
  ASSERT_TRUE(parse_allreduce_algo("alltoone", a));
  EXPECT_EQ(a, AllreduceAlgo::kAllToOne);
  EXPECT_FALSE(parse_allreduce_algo("butterfly", a));
  for (auto algo :
       {AllreduceAlgo::kAllToOne, AllreduceAlgo::kRing, AllreduceAlgo::kTree}) {
    AllreduceAlgo back;
    ASSERT_TRUE(parse_allreduce_algo(allreduce_algo_name(algo), back));
    EXPECT_EQ(back, algo);
  }
}

// With the happens-before detector armed, a ready-event-ordered collective
// must stay silent: the comm legs read payloads behind the producer's event
// edge on every shard, for every algorithm.
TEST(Allreduce, RaceDetectorCleanOverCommStreams) {
  analysis::set_race_detect_enabled(true);
  for (auto algo :
       {AllreduceAlgo::kAllToOne, AllreduceAlgo::kRing, AllreduceAlgo::kTree}) {
    Net net = make_net(4, /*with_ready=*/true);
    auto storage = make_payloads(4, 128);
    auto payloads = spans_of(storage);
    EXPECT_NO_THROW(allreduce<std::int64_t>("comm_test", Interconnect::pcie3(),
                                            algo, net.links, payloads, kSum));
    for (auto& d : net.devs) d->sync();
  }
  analysis::set_race_detect_enabled(false);
}

}  // namespace
}  // namespace gbdt::multigpu
