// Tests for the device-side histogram trainer (core/trainer_hist) and its
// kernel layer (primitives/histogram.h): the histogram-subtraction trick is
// bitwise-identical to direct accumulation, the device bin-index matrix
// round-trips through BinCuts::bin_of, empty-node and single-bin edge cases,
// determinism across replayed runs, the subtraction self-check catches an
// injected fault, and an audit-armed end-to-end training run.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/access_audit.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "core/trainer_hist.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "device/workspace_arena.h"
#include "obs/metrics.h"
#include "primitives/histogram.h"
#include "testing/invariants.h"

namespace gbdt {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;
using hist::QGH;

data::Dataset make_data(unsigned seed, std::int64_t n = 1200,
                        std::int64_t d = 8, double density = 0.7) {
  SyntheticSpec s;
  s.n_instances = n;
  s.n_attributes = d;
  s.density = density;
  s.label_noise = 0.1;
  s.seed = seed;
  return generate(s);
}

GBDTParam hist_param(int bins = 32, int depth = 4, int trees = 4) {
  GBDTParam p;
  p.use_hist_trainer = true;
  p.n_bins = bins;
  p.depth = depth;
  p.n_trees = trees;
  return p;
}

/// Deterministic pseudo-random fixed-point gradients, independent of the
/// trainer so the kernel-layer tests control their own inputs.
std::vector<std::int64_t> fake_quantized(std::int64_t n, std::int64_t salt) {
  std::vector<std::int64_t> q(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto m = static_cast<std::uint64_t>(i + salt) * 2654435761u;
    q[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(m % 2001) - 1000;
  }
  return q;
}

// ---- kernel layer ----------------------------------------------------------

TEST(HistDevice, SubtractionBitwiseMatchesDirectAccumulation) {
  const auto ds = make_data(41, 900, 6);
  Device dev(DeviceConfig::titan_x_pascal());
  device::WorkspaceArena arena(dev.allocator());
  const auto binned = build_binned_matrix(dev, ds, 16);
  const std::int64_t cps = binned.n_attr * binned.n_bins;

  const auto qg_h = fake_quantized(ds.n_instances(), 1);
  const auto qh_h = fake_quantized(ds.n_instances(), 7);
  auto qg = dev.to_device<std::int64_t>(qg_h);
  auto qh = dev.to_device<std::int64_t>(qh_h);

  // Instances split across two sibling nodes 3 and 4 of parent 1.
  std::vector<std::int32_t> node_of_h(
      static_cast<std::size_t>(ds.n_instances()));
  for (std::size_t i = 0; i < node_of_h.size(); ++i) {
    node_of_h[i] = (i % 3 == 0) ? 3 : 4;
  }
  auto node_of = dev.to_device<std::int32_t>(node_of_h);

  // Parent histogram: both children accumulate into slot 0.
  auto parent = arena.alloc<QGH>(static_cast<std::size_t>(cps));
  {
    std::vector<std::int32_t> accum_of_node = {-1, -1, -1, 0, 0};
    std::vector<std::int32_t> dest = {0};
    auto a = dev.to_device<std::int32_t>(accum_of_node);
    auto d = dev.to_device<std::int32_t>(dest);
    hist::build_histograms(dev, arena, binned.row_offsets.span(),
                           binned.entry_attr.span(), binned.entry_bin.span(),
                           qg.span(), qh.span(), node_of.span(), a.span(),
                           d.span(), binned.n_attr, binned.n_bins,
                           parent.span());
  }
  // Current level: sibling (node 3) accumulated into slot 0; node 4 skipped.
  auto cur = arena.alloc<QGH>(static_cast<std::size_t>(2 * cps));
  {
    std::vector<std::int32_t> accum_of_node = {-1, -1, -1, 0, -1};
    std::vector<std::int32_t> dest = {0};
    auto a = dev.to_device<std::int32_t>(accum_of_node);
    auto d = dev.to_device<std::int32_t>(dest);
    hist::build_histograms(dev, arena, binned.row_offsets.span(),
                           binned.entry_attr.span(), binned.entry_bin.span(),
                           qg.span(), qh.span(), node_of.span(), a.span(),
                           d.span(), binned.n_attr, binned.n_bins, cur.span());
  }
  // Derived child (node 4) at slot 1 via parent - sibling.
  {
    std::vector<std::int32_t> ps = {0}, ss = {0}, der = {1};
    auto p = dev.to_device<std::int32_t>(ps);
    auto s = dev.to_device<std::int32_t>(ss);
    auto de = dev.to_device<std::int32_t>(der);
    hist::subtract_histograms(dev, parent.span(), cur.span(), p.span(),
                              s.span(), de.span(), cps);
  }
  // Direct accumulation of node 4, for the bitwise comparison.
  auto direct = arena.alloc<QGH>(static_cast<std::size_t>(cps));
  {
    std::vector<std::int32_t> accum_of_node = {-1, -1, -1, -1, 0};
    std::vector<std::int32_t> dest = {0};
    auto a = dev.to_device<std::int32_t>(accum_of_node);
    auto d = dev.to_device<std::int32_t>(dest);
    hist::build_histograms(dev, arena, binned.row_offsets.span(),
                           binned.entry_attr.span(), binned.entry_bin.span(),
                           qg.span(), qh.span(), node_of.span(), a.span(),
                           d.span(), binned.n_attr, binned.n_bins,
                           direct.span());
  }
  std::int64_t occupied = 0;
  for (std::int64_t c = 0; c < cps; ++c) {
    const QGH& want = direct[static_cast<std::size_t>(c)];
    const QGH& got = cur[static_cast<std::size_t>(cps + c)];
    ASSERT_EQ(want.g, got.g) << "cell " << c;
    ASSERT_EQ(want.h, got.h) << "cell " << c;
    ASSERT_EQ(want.cnt, got.cnt) << "cell " << c;
    occupied += want.cnt > 0;
  }
  EXPECT_GT(occupied, 0);  // the comparison exercised real cells
}

TEST(HistDevice, BinIndexMatrixRoundTripsThroughBinOf) {
  const auto ds = make_data(42, 700, 5, 0.6);
  Device dev(DeviceConfig::titan_x_pascal());
  const auto binned = build_binned_matrix(dev, ds, 12);
  ASSERT_EQ(binned.n_inst, ds.n_instances());
  ASSERT_EQ(binned.n_attr, ds.n_attributes());
  ASSERT_EQ(static_cast<std::int64_t>(binned.cuts.size()), ds.n_attributes());

  const auto attr = dev.to_host(binned.entry_attr);
  const auto bin = dev.to_host(binned.entry_bin);
  const auto& entries = ds.entries();
  ASSERT_EQ(attr.size(), entries.size());
  ASSERT_EQ(bin.size(), entries.size());
  for (std::size_t k = 0; k < entries.size(); ++k) {
    ASSERT_EQ(attr[k], entries[k].attr) << "entry " << k;
    const auto& cuts = binned.cuts[static_cast<std::size_t>(entries[k].attr)];
    ASSERT_EQ(static_cast<int>(bin[k]), cuts.bin_of(entries[k].value))
        << "entry " << k;
    ASSERT_LT(static_cast<int>(bin[k]), binned.n_bins);
  }
}

TEST(HistDevice, EmptyNodeYieldsZeroHistogramAndOnlyDestRowsAreWritten) {
  const auto ds = make_data(43, 300, 4);
  Device dev(DeviceConfig::titan_x_pascal());
  device::WorkspaceArena arena(dev.allocator());
  const auto binned = build_binned_matrix(dev, ds, 8);
  const std::int64_t cps = binned.n_attr * binned.n_bins;

  auto qg = dev.to_device<std::int64_t>(fake_quantized(ds.n_instances(), 3));
  auto qh = dev.to_device<std::int64_t>(fake_quantized(ds.n_instances(), 9));
  // Every instance sits in node 1; node 2 is empty.
  std::vector<std::int32_t> node_of_h(
      static_cast<std::size_t>(ds.n_instances()), 1);
  auto node_of = dev.to_device<std::int32_t>(node_of_h);

  auto out = arena.alloc<QGH>(static_cast<std::size_t>(3 * cps));
  const QGH sentinel{7, 7, 7};
  prim::fill(dev, out, sentinel);
  // Node 1 -> slot 0, empty node 2 -> slot 2; slot 1 is not a destination.
  std::vector<std::int32_t> accum_of_node = {-1, 0, 1};
  std::vector<std::int32_t> dest = {0, 2};
  auto a = dev.to_device<std::int32_t>(accum_of_node);
  auto d = dev.to_device<std::int32_t>(dest);
  hist::build_histograms(dev, arena, binned.row_offsets.span(),
                         binned.entry_attr.span(), binned.entry_bin.span(),
                         qg.span(), qh.span(), node_of.span(), a.span(),
                         d.span(), binned.n_attr, binned.n_bins, out.span());

  std::int64_t populated_count = 0;
  for (std::int64_t c = 0; c < cps; ++c) {
    populated_count += out[static_cast<std::size_t>(c)].cnt;  // slot 0
    const QGH& skipped = out[static_cast<std::size_t>(cps + c)];
    EXPECT_TRUE(skipped == sentinel) << "non-dest cell " << c;
    const QGH& empty = out[static_cast<std::size_t>(2 * cps + c)];
    EXPECT_TRUE(empty == QGH{}) << "empty-node cell " << c;
  }
  // Each present entry lands exactly once in slot 0.
  EXPECT_GT(populated_count, 0);
}

TEST(HistDevice, SubtractionSelfCheckCatchesInjectedFault) {
  const auto ds = make_data(44, 400, 5);
  auto p = hist_param(16, 3, 1);
  Device dev(DeviceConfig::titan_x_pascal());
  testing::set_invariants_enabled(true);
  testing::fault_injection() = {};
  testing::fault_injection().break_hist_subtraction = true;
  EXPECT_THROW((void)GpuHistTrainer(dev, p).train(ds),
               testing::InvariantViolation);
  testing::fault_injection() = {};
  testing::set_invariants_enabled(false);
}

// ---- trainer ---------------------------------------------------------------

TEST(HistDevice, SingleBinTrainingCompletes) {
  const auto ds = make_data(45, 500, 6, 0.5);
  auto p = hist_param(1, 3, 3);
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = GpuHistTrainer(dev, p).train(ds);
  ASSERT_EQ(r.trees.size(), 3u);
  for (const auto& t : r.trees) {
    EXPECT_LE(t.depth(), 3);
    for (const auto& n : t.nodes()) {
      if (!n.is_leaf()) EXPECT_GT(n.n_instances, 0);
    }
  }
}

TEST(HistDevice, DeterministicAcrossReplayedRuns) {
  const auto ds = make_data(46);
  const auto p = hist_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto a = GpuHistTrainer(dev1, p).train(ds);
  const auto b = GpuHistTrainer(dev2, p).train(ds);
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(a.trees[t], b.trees[t], 0.0)) << t;
  }
  EXPECT_EQ(a.train_scores, b.train_scores);
}

TEST(HistDevice, QualityTracksExactTrainer) {
  const auto ds = make_data(47, 2000, 12);
  auto p = hist_param(64, 4, 8);
  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  p.use_hist_trainer = false;
  const auto exact = GpuGbdtTrainer(dev1, p).train(ds);
  const auto h = GpuHistTrainer(dev2, p).train(ds);
  ASSERT_EQ(h.trees.size(), exact.trees.size());
  const double exact_rmse = rmse(exact.train_scores, ds.labels());
  const double hist_rmse = rmse(h.train_scores, ds.labels());
  EXPECT_LT(hist_rmse, exact_rmse * 1.35 + 0.05);
}

TEST(HistDevice, SubtractionCounterAdvancesWithDepth) {
  const auto ds = make_data(48, 800, 8);
  auto p = hist_param(16, 4, 2);
  auto& counter =
      obs::Registry::global().counter("gbdt_hist_subtractions_total");
  const auto before = counter.value();
  Device dev(DeviceConfig::titan_x_pascal());
  (void)GpuHistTrainer(dev, p).train(ds);
  EXPECT_GT(counter.value(), before);
}

TEST(HistDevice, AuditArmedTrainingRunsClean) {
  const auto ds = make_data(49, 600, 6);
  const auto p = hist_param(16, 3, 2);
  Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
  analysis::set_audit_enabled(true);
  try {
    const auto r = GpuHistTrainer(dev, p).train(ds);
    EXPECT_EQ(r.trees.size(), 2u);
  } catch (...) {
    analysis::set_audit_enabled(false);
    throw;
  }
  analysis::set_audit_enabled(false);
}

}  // namespace
}  // namespace gbdt
