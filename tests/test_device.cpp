// Unit tests for the simulated device: allocator capacity semantics, buffer
// RAII, kernel launch accounting, cost-model monotonicity, PCI-e accounting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "device/cost_model.h"
#include "device/device_config.h"
#include "device/device_context.h"
#include "device/device_memory.h"

namespace gbdt::device {
namespace {

DeviceConfig small_config(std::size_t mem = 1 << 20) {
  DeviceConfig c = DeviceConfig::titan_x_pascal();
  c.global_mem_bytes = mem;
  return c;
}

TEST(DeviceAllocator, TracksUsageAndPeak) {
  DeviceAllocator a(1000);
  a.acquire(400);
  EXPECT_EQ(a.used(), 400u);
  a.acquire(500);
  EXPECT_EQ(a.used(), 900u);
  EXPECT_EQ(a.peak(), 900u);
  a.release(500);
  EXPECT_EQ(a.used(), 400u);
  EXPECT_EQ(a.peak(), 900u);
  EXPECT_EQ(a.available(), 600u);
}

TEST(DeviceAllocator, ThrowsOnExhaustion) {
  DeviceAllocator a(1000);
  a.acquire(800);
  EXPECT_THROW(a.acquire(300), DeviceOutOfMemory);
  // A failed acquire must not change usage.
  EXPECT_EQ(a.used(), 800u);
}

TEST(DeviceAllocator, OomCarriesDiagnostics) {
  DeviceAllocator a(100);
  a.acquire(60);
  try {
    a.acquire(50);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested(), 50u);
    EXPECT_EQ(e.used(), 60u);
    EXPECT_EQ(e.capacity(), 100u);
  }
}

TEST(DeviceBuffer, RaiiReleasesOnDestruction) {
  DeviceAllocator a(1 << 20);
  {
    DeviceBuffer<float> buf(a, 1024);
    EXPECT_EQ(a.used(), 1024 * sizeof(float));
    EXPECT_EQ(buf.size(), 1024u);
  }
  EXPECT_EQ(a.used(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  DeviceAllocator a(1 << 20);
  DeviceBuffer<int> src(a, 100);
  src[7] = 42;
  DeviceBuffer<int> dst(std::move(src));
  EXPECT_EQ(dst.size(), 100u);
  EXPECT_EQ(dst[7], 42);
  EXPECT_EQ(src.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.used(), 100 * sizeof(int));
}

TEST(DeviceBuffer, ShrinkReturnsMemory) {
  DeviceAllocator a(1 << 20);
  DeviceBuffer<double> buf(a, 1000);
  buf.shrink(250);
  EXPECT_EQ(buf.size(), 250u);
  EXPECT_EQ(a.used(), 250 * sizeof(double));
  buf.shrink(900);  // growing via shrink is a no-op
  EXPECT_EQ(buf.size(), 250u);
}

TEST(Device, LaunchRunsEveryBlockOnce) {
  Device dev(small_config());
  auto buf = dev.alloc<int>(1000);
  auto s = buf.span();
  dev.launch("touch", grid_for(1000, 256), 256, [&](BlockCtx& b) {
    b.for_each_thread([&](std::int64_t i) {
      if (i < 1000) s[static_cast<std::size_t>(i)] += 1;
    });
  });
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(buf[i], 1) << i;
  EXPECT_EQ(dev.timeline().launches, 1u);
  EXPECT_EQ(dev.timeline().kernels.at("touch").stats.blocks, 4u);
}

TEST(Device, MultiWorkerLaunchMatchesSerial) {
  const std::int64_t n = 10000;
  std::vector<int> expected(n);
  for (std::int64_t i = 0; i < n; ++i) expected[i] = static_cast<int>(i * 3);

  for (unsigned workers : {1u, 4u}) {
    Device dev(small_config(), workers);
    auto buf = dev.alloc<int>(n);
    auto s = buf.span();
    dev.launch("triple", grid_for(n, 256), 256, [&](BlockCtx& b) {
      b.for_each_thread([&](std::int64_t i) {
        if (i < n) s[static_cast<std::size_t>(i)] = static_cast<int>(i * 3);
      });
    });
    auto host = dev.to_host(buf);
    EXPECT_EQ(host, expected) << "workers=" << workers;
  }
}

TEST(Device, TimelineAccumulatesKernelsAndTransfers) {
  Device dev(small_config());
  std::vector<float> host(4096, 1.f);
  auto buf = dev.to_device<float>(host);
  EXPECT_EQ(dev.timeline().transfers, 1u);
  EXPECT_EQ(dev.timeline().bytes_to_device, 4096 * sizeof(float));
  EXPECT_GT(dev.timeline().transfer_seconds, 0.0);

  dev.launch("noop", 2, 256, [&](BlockCtx& b) { b.work(100); });
  EXPECT_GT(dev.timeline().kernel_seconds, 0.0);
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(),
                   dev.timeline().kernel_seconds +
                       dev.timeline().transfer_seconds);

  auto back = dev.to_host(buf);
  EXPECT_EQ(back, host);
  EXPECT_EQ(dev.timeline().bytes_to_host, 4096 * sizeof(float));

  dev.reset_timeline();
  EXPECT_EQ(dev.elapsed_seconds(), 0.0);
  EXPECT_TRUE(dev.timeline().kernels.empty());
}

TEST(Device, BufferAllocationRespectsDeviceCapacity) {
  Device dev(small_config(/*mem=*/4096));
  auto ok = dev.alloc<std::uint8_t>(4000);
  EXPECT_THROW((void)dev.alloc<std::uint8_t>(200), DeviceOutOfMemory);
}

TEST(DeviceAllocator, PeakResetsToCurrentUsage) {
  DeviceAllocator a(1000);
  a.acquire(700);
  a.release(500);
  EXPECT_EQ(a.peak(), 700u);
  a.reset_peak();
  EXPECT_EQ(a.peak(), 200u);
  a.acquire(100);
  EXPECT_EQ(a.peak(), 300u);
  EXPECT_EQ(a.allocations(), 2u);
  EXPECT_EQ(a.releases(), 1u);
  EXPECT_EQ(a.over_releases(), 0u);
}

TEST(Device, KernelThrowSurfacesOnCallerAndPoolStaysUsable) {
  // A device-memory failure raised inside a kernel block must reach the
  // calling thread as the original exception type, on a multi-worker pool,
  // and the pool must keep running launches afterwards.
  const std::int64_t n = 100'000;
  Device dev(small_config(/*mem=*/1 << 22), /*workers=*/4);
  auto buf = dev.alloc<int>(n);
  auto s = buf.span();

  try {
    dev.launch("throwing_kernel", grid_for(n, 256), 256, [&](BlockCtx& b) {
      if (b.block_idx() == 17) {
        throw DeviceOutOfMemory(64, 32, 48);
      }
      b.for_each_thread([&](std::int64_t i) {
        if (i < n) s[static_cast<std::size_t>(i)] = 1;
      });
      b.writes_tile(s, n);
    });
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested(), 64u);
    EXPECT_EQ(e.used(), 32u);
    EXPECT_EQ(e.capacity(), 48u);
  }

  // Subsequent launches on the same pool complete normally.
  for (int round = 0; round < 3; ++round) {
    dev.launch("after_throw", grid_for(n, 256), 256, [&](BlockCtx& b) {
      b.for_each_thread([&](std::int64_t i) {
        if (i < n) s[static_cast<std::size_t>(i)] = round;
      });
      b.writes_tile(s, n);
    });
  }
  for (std::int64_t i = 0; i < n; i += 997) {
    ASSERT_EQ(buf[static_cast<std::size_t>(i)], 2);
  }
}

TEST(Device, FirstOfConcurrentKernelExceptionsWins) {
  // Several blocks throw; exactly one exception (the first captured) must
  // surface and the launch must still drain cleanly.
  const std::int64_t grid = 64;
  Device dev(small_config(), /*workers=*/4);
  int runs = 0;
  for (int round = 0; round < 10; ++round) {
    try {
      dev.launch("multi_throw", grid, 32, [&](BlockCtx& b) {
        if (b.block_idx() % 3 == 0) {
          throw std::runtime_error("block " + std::to_string(b.block_idx()));
        }
      });
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()).rfind("block ", 0), 0u) << e.what();
      ++runs;
    }
  }
  EXPECT_EQ(runs, 10);
}

TEST(CostModel, MoreIrregularTrafficCostsMore) {
  CostModel m(DeviceConfig::titan_x_pascal());
  KernelStats streaming;
  streaming.thread_work = 1 << 20;
  streaming.coalesced_bytes = 1 << 24;
  streaming.blocks = 4096;

  KernelStats irregular = streaming;
  irregular.coalesced_bytes = 0;
  irregular.irregular_accesses = (1 << 24) / 4;  // same payload, random

  EXPECT_GT(m.kernel_seconds(irregular), m.kernel_seconds(streaming));
}

TEST(CostModel, BusiestBlockBoundsKernelTime) {
  CostModel m(DeviceConfig::titan_x_pascal());
  KernelStats balanced;
  balanced.thread_work = 1 << 22;
  balanced.blocks = 1 << 12;
  balanced.max_block_work = (1 << 22) / (1 << 12);

  KernelStats skewed = balanced;
  skewed.max_block_work = 1 << 22;  // one block did all the work

  EXPECT_GT(m.kernel_seconds(skewed), m.kernel_seconds(balanced));
}

TEST(CostModel, BlockScheduleOverheadScalesWithBlocks) {
  CostModel m(DeviceConfig::titan_x_pascal());
  KernelStats few;
  few.thread_work = 1000;
  few.blocks = 10;
  KernelStats many = few;
  many.blocks = 10'000'000;
  EXPECT_GT(m.kernel_seconds(many), 10 * m.kernel_seconds(few));
}

TEST(CostModel, TransferFasterOnWiderLink) {
  DeviceConfig slow = DeviceConfig::titan_x_pascal();
  DeviceConfig fast = slow;
  fast.pcie_bandwidth_gbps *= 2;
  const std::uint64_t bytes = 1 << 30;
  EXPECT_GT(CostModel(slow).transfer_seconds(bytes),
            CostModel(fast).transfer_seconds(bytes));
}

TEST(DeviceConfig, PresetsAreDistinct) {
  const auto tx = DeviceConfig::titan_x_pascal();
  const auto p100 = DeviceConfig::tesla_p100();
  const auto k20 = DeviceConfig::tesla_k20();
  EXPECT_GT(p100.mem_bandwidth_gbps, tx.mem_bandwidth_gbps);
  EXPECT_LT(k20.mem_bandwidth_gbps, tx.mem_bandwidth_gbps);
  EXPECT_GT(tx.compute_throughput(), k20.compute_throughput());
}

TEST(CpuConfig, ParallelSpeedupMatchesPaperRange) {
  const auto cpu = CpuConfig::dual_xeon_e5_2640v4();
  const double s40 = cpu.parallel_speedup(40);
  // Table II reports xgbst-40 5.7x-10.7x over xgbst-1; the model must land
  // inside that band.
  EXPECT_GE(s40, 5.7);
  EXPECT_LE(s40, 10.7);
  EXPECT_EQ(cpu.parallel_speedup(1), 1.0);
  EXPECT_LT(cpu.parallel_speedup(10), cpu.parallel_speedup(20));
  EXPECT_LT(cpu.parallel_speedup(20), s40);
}

}  // namespace
}  // namespace gbdt::device
