// Parameterized sweep of the two RLE node-split strategies: Directly-Split
// (splitting the run representation in place, paper Section III-C) must be
// indistinguishable from the decompress -> partition -> recompress fallback
// — identical trees, identical training scores, and identical compression
// accounting (used_rle / rle_ratio), across value cardinalities, densities,
// losses and depths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

struct RleSweepCase {
  std::string tag;
  int distinct_values;
  double density;
  bool zipf;
  LossKind loss;
  int depth;
  int n_trees;
};

std::string case_name(const ::testing::TestParamInfo<RleSweepCase>& info) {
  return info.param.tag;
}

class RlePathSweep : public ::testing::TestWithParam<RleSweepCase> {};

TEST_P(RlePathSweep, DirectSplitMatchesDecompressRepartition) {
  const RleSweepCase& c = GetParam();

  SyntheticSpec spec;
  spec.n_instances = 500;
  spec.n_attributes = 10;
  spec.density = c.density;
  spec.distinct_values = c.distinct_values;
  spec.zipf_values = c.zipf;
  spec.binary_labels = c.loss == LossKind::kLogistic;
  spec.seed = 97;
  const auto ds = generate(spec);

  GBDTParam p;
  p.depth = c.depth;
  p.n_trees = c.n_trees;
  p.loss = c.loss;
  p.use_rle = true;
  p.force_rle = true;  // bypass the paper gate: we compare the strategies

  p.use_direct_rle_split = true;
  Device dev_direct(DeviceConfig::titan_x_pascal());
  const auto direct = GpuGbdtTrainer(dev_direct, p).train(ds);

  p.use_direct_rle_split = false;
  Device dev_fallback(DeviceConfig::titan_x_pascal());
  const auto fallback = GpuGbdtTrainer(dev_fallback, p).train(ds);

  // Same compression accounting on both strategies.
  EXPECT_TRUE(direct.used_rle);
  EXPECT_TRUE(fallback.used_rle);
  EXPECT_EQ(direct.rle_ratio, fallback.rle_ratio);

  // Identical forests, bit for bit.
  ASSERT_EQ(direct.trees.size(), fallback.trees.size());
  for (std::size_t t = 0; t < direct.trees.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(direct.trees[t], fallback.trees[t], 0.0))
        << "tree " << t << " differs:\n"
        << direct.trees[t].dump() << "\nvs\n"
        << fallback.trees[t].dump();
  }

  // Identical training scores, bit for bit.
  ASSERT_EQ(direct.train_scores.size(), fallback.train_scores.size());
  for (std::size_t i = 0; i < direct.train_scores.size(); ++i) {
    ASSERT_EQ(direct.train_scores[i], fallback.train_scores[i])
        << "score " << i << " differs";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RlePathSweep,
    ::testing::Values(
        RleSweepCase{"lowcard_dense_zipf_l2_d4", 4, 1.0, true,
                     LossKind::kSquaredError, 4, 3},
        RleSweepCase{"lowcard_dense_uniform_l2_d4", 4, 1.0, false,
                     LossKind::kSquaredError, 4, 3},
        RleSweepCase{"midcard_dense_zipf_logistic_d3", 8, 1.0, true,
                     LossKind::kLogistic, 3, 3},
        RleSweepCase{"lowcard_sparse_zipf_l2_d4", 4, 0.5, true,
                     LossKind::kSquaredError, 4, 3},
        RleSweepCase{"midcard_sparse_uniform_logistic_d5", 8, 0.4, false,
                     LossKind::kLogistic, 5, 2},
        RleSweepCase{"binaryvals_dense_zipf_l2_d6", 2, 1.0, true,
                     LossKind::kSquaredError, 6, 2},
        RleSweepCase{"continuous_dense_l2_d3", 0, 1.0, true,
                     LossKind::kSquaredError, 3, 2},
        RleSweepCase{"continuous_sparse_logistic_d4", 0, 0.6, true,
                     LossKind::kLogistic, 4, 2}),
    case_name);

}  // namespace
}  // namespace gbdt
