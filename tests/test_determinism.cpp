// Determinism under replay: the same seed must yield bit-identical results
// on every trainer entry point — cross-validation folds, one-vs-rest
// multiclass models (down to the serialized bytes), and feature-parallel
// multi-GPU forests.  This is what makes `gbdt_fuzz --seed` repro commands
// exact: no entry point may consult hidden global RNG state.
#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "core/cv.h"
#include "core/multiclass.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "multigpu/multi_trainer.h"

namespace gbdt {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Determinism, CrossValidationReplaysBitIdentical) {
  SyntheticSpec s;
  s.n_instances = 400;
  s.n_attributes = 8;
  s.seed = 11;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 4;
  for (unsigned fold_seed : {3u, 19u}) {
    Device dev_a(DeviceConfig::titan_x_pascal());
    Device dev_b(DeviceConfig::titan_x_pascal());
    const auto a = cross_validate(dev_a, ds, p, 4, fold_seed);
    const auto b = cross_validate(dev_b, ds, p, 4, fold_seed);
    EXPECT_EQ(a.fold_metric, b.fold_metric);  // exact double equality
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
  }
}

TEST(Determinism, MulticlassReplaysToIdenticalSavedBytes) {
  // Three separable clusters, generated twice from the same seed.
  auto make_ds = [](unsigned seed) {
    std::mt19937 rng(seed);
    std::normal_distribution<float> noise(0.f, 0.3f);
    const float cx[3] = {-2.f, 0.f, 2.f};
    data::Dataset ds(3);
    for (std::int64_t i = 0; i < 300; ++i) {
      const int k = static_cast<int>(i % 3);
      const std::vector<data::Entry> row{
          {0, cx[k] + noise(rng)}, {1, noise(rng)}, {2, noise(rng)}};
      ds.add_instance(row, static_cast<float>(k));
    }
    return ds;
  };
  const auto ds1 = make_ds(29);
  const auto ds2 = make_ds(29);

  GBDTParam p;
  p.depth = 3;
  p.n_trees = 4;
  Device dev_a(DeviceConfig::titan_x_pascal());
  Device dev_b(DeviceConfig::titan_x_pascal());
  auto [model_a, modeled_a] = MulticlassModel::train(dev_a, ds1, 3, p);
  auto [model_b, modeled_b] = MulticlassModel::train(dev_b, ds2, 3, p);

  EXPECT_EQ(model_a.error_rate(ds1), model_b.error_rate(ds1));
  const auto proba_a = model_a.predict_proba(ds1);
  const auto proba_b = model_b.predict_proba(ds1);
  ASSERT_EQ(proba_a.size(), proba_b.size());
  for (std::size_t i = 0; i < proba_a.size(); ++i) {
    EXPECT_EQ(proba_a[i], proba_b[i]) << "probabilities differ at row " << i;
  }

  // The serialized models must be byte-identical.
  const std::string prefix_a = ::testing::TempDir() + "det_mc_a";
  const std::string prefix_b = ::testing::TempDir() + "det_mc_b";
  model_a.save(prefix_a);
  model_b.save(prefix_b);
  for (int k = 0; k < 3; ++k) {
    const std::string fa = slurp(prefix_a + ".class" + std::to_string(k));
    const std::string fb = slurp(prefix_b + ".class" + std::to_string(k));
    ASSERT_FALSE(fa.empty());
    EXPECT_EQ(fa, fb) << "saved class-" << k << " model differs";
  }
}

TEST(Determinism, MultiGpuReplaysBitIdentical) {
  SyntheticSpec s;
  s.n_instances = 500;
  s.n_attributes = 9;
  s.distinct_values = 6;
  s.seed = 31;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 3;

  multigpu::MultiGpuTrainer t_a(DeviceConfig::titan_x_pascal(), 3, p);
  multigpu::MultiGpuTrainer t_b(DeviceConfig::titan_x_pascal(), 3, p);
  const auto a = t_a.train(ds);
  const auto b = t_b.train(ds);

  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(a.trees[t], b.trees[t], 0.0))
        << "tree " << t << " differs between identical multi-GPU runs";
  }
  EXPECT_EQ(a.train_scores, b.train_scores);
  EXPECT_EQ(a.comm_bytes, b.comm_bytes);
}

TEST(Determinism, SyntheticGenerationIsAFunctionOfItsSeed) {
  SyntheticSpec s;
  s.n_instances = 200;
  s.n_attributes = 6;
  s.density = 0.7;
  s.distinct_values = 5;
  s.seed = 77;
  const auto a = generate(s);
  const auto b = generate(s);
  ASSERT_EQ(a.n_instances(), b.n_instances());
  EXPECT_EQ(a.labels(), b.labels());
  ASSERT_EQ(a.n_entries(), b.n_entries());
  for (std::int64_t i = 0; i < a.n_entries(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    EXPECT_EQ(a.entries()[u].attr, b.entries()[u].attr);
    EXPECT_EQ(a.entries()[u].value, b.entries()[u].value);
  }
  // A different seed must actually change the data.
  s.seed = 78;
  const auto c = generate(s);
  EXPECT_NE(a.labels(), c.labels());
}

}  // namespace
}  // namespace gbdt
