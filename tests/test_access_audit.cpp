// Tests for the kernel access auditor (src/analysis): clean annotated code
// stays silent, each seeded fault class fires with a minimized report, the
// auditor is inert when disabled, violations unwind cleanly through the
// multi-worker thread pool, and DeviceAllocator over-release is reported.
//
// The fault kernels perform their overlapping writes for real, so every
// test that runs one uses a single-worker (serial) device — the auditor
// fires on the declarations either way, and the ThreadSanitizer lane of
// tools/check_sanitizers.sh stays clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/access_audit.h"
#include "analysis/fault_kernels.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "primitives/partition.h"
#include "primitives/scan.h"
#include "primitives/sort.h"
#include "primitives/transform.h"
#include "rle/rle.h"

namespace gbdt {
namespace {

using analysis::AuditViolation;
using device::Device;
using device::DeviceConfig;

/// Arms the auditor for the test body and disarms it on exit, so audit
/// state never leaks across tests.
class AuditArmed : public ::testing::Test {
 protected:
  void SetUp() override { analysis::set_audit_enabled(true); }
  void TearDown() override { analysis::set_audit_enabled(false); }
};

using AccessAudit = AuditArmed;

TEST_F(AccessAudit, AnnotatedPrimitivesRunClean) {
  Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
  const std::int64_t n = 10'000;

  auto in = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  auto out = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  prim::fill(dev, in, std::int64_t{3});
  EXPECT_NO_THROW(prim::exclusive_scan(dev, in, out, "audit_scan"));
  EXPECT_EQ(out[static_cast<std::size_t>(n - 1)], 3 * (n - 1));

  auto keys = dev.alloc<std::uint64_t>(static_cast<std::size_t>(n));
  auto vals = dev.alloc<std::uint32_t>(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    keys[static_cast<std::size_t>(i)] =
        static_cast<std::uint64_t>((i * 2654435761u) % 100'000);
    vals[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
  }
  EXPECT_NO_THROW(prim::radix_sort_pairs(dev, keys, vals, 32));
  for (std::int64_t i = 1; i < n; ++i) {
    ASSERT_LE(keys[static_cast<std::size_t>(i - 1)],
              keys[static_cast<std::size_t>(i)]);
  }

  auto ids = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    ids[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i % 7);
  }
  auto scatter = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  auto offsets = dev.alloc<std::int64_t>(8);
  const auto plan = prim::plan_partition(n, 7, 1 << 20, true);
  EXPECT_NO_THROW(prim::histogram_partition(dev, ids.span(), 7, scatter.span(),
                                            offsets.span(), plan));
  EXPECT_EQ(offsets[7], n);
}

TEST_F(AccessAudit, OverlappingWriteFires) {
  Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/1);
  try {
    analysis::run_overlapping_scatter_fault(dev);
    FAIL() << "auditor did not fire";
  } catch (const AuditViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fault_overlapping_scatter"), std::string::npos) << msg;
    EXPECT_NE(msg.find("both write"), std::string::npos) << msg;
    EXPECT_NE(msg.find("blocks 0 and 1"), std::string::npos) << msg;
  }
}

TEST_F(AccessAudit, CrossBlockReadFires) {
  Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/1);
  try {
    analysis::run_cross_block_read_fault(dev);
    FAIL() << "auditor did not fire";
  } catch (const AuditViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fault_cross_block_read"), std::string::npos) << msg;
    EXPECT_NE(msg.find("writes in the same launch"), std::string::npos) << msg;
  }
}

TEST_F(AccessAudit, OutOfBoundsDeclarationFires) {
  Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/1);
  try {
    analysis::run_out_of_bounds_fault(dev);
    FAIL() << "auditor did not fire";
  } catch (const AuditViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fault_out_of_bounds"), std::string::npos) << msg;
    EXPECT_NE(msg.find("out of bounds"), std::string::npos) << msg;
  }
}

TEST_F(AccessAudit, ViolationUnwindsThroughWorkerPoolAndDeviceStaysUsable) {
  // The out-of-bounds fault only *declares* the bad access (no real OOB
  // store), so it is safe on a multi-worker pool: the throw happens on
  // whichever worker runs the last block and must surface on the caller.
  Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
  EXPECT_THROW(analysis::run_out_of_bounds_fault(dev, /*grid_dim=*/64),
               AuditViolation);

  // The pool must remain reusable after the unwound launch.
  auto buf = dev.alloc<std::int64_t>(4096);
  EXPECT_NO_THROW(prim::iota(dev, buf));
  EXPECT_EQ(buf[4095], 4095);
}

TEST(AccessAuditDisabled, FaultKernelsAreInertWithoutAudit) {
  analysis::set_audit_enabled(false);
  Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/1);
  EXPECT_NO_THROW(analysis::run_overlapping_scatter_fault(dev));
  EXPECT_NO_THROW(analysis::run_cross_block_read_fault(dev));
  EXPECT_NO_THROW(analysis::run_out_of_bounds_fault(dev));
}

TEST_F(AccessAudit, SparseAndRleTrainingRunClean) {
  data::SyntheticSpec spec;
  spec.n_instances = 300;
  spec.n_attributes = 8;
  spec.density = 0.6;
  spec.distinct_values = 6;  // low cardinality so RLE engages
  spec.seed = 41;
  const auto ds = data::generate(spec);

  GBDTParam p;
  p.depth = 4;
  p.n_trees = 2;

  {
    p.use_rle = false;
    Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
    const auto rep = GpuGbdtTrainer(dev, p).train(ds);
    EXPECT_EQ(rep.trees.size(), 2u);
  }
  {
    p.use_rle = true;
    p.force_rle = true;
    Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
    const auto rep = GpuGbdtTrainer(dev, p).train(ds);
    EXPECT_TRUE(rep.used_rle);
  }
}

TEST_F(AccessAudit, RleRoundTripRunsClean) {
  Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
  const std::int64_t n = 4096;
  auto values = dev.alloc<float>(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    values[static_cast<std::size_t>(i)] = static_cast<float>((i / 37) % 5);
  }
  auto offs = dev.alloc<std::int64_t>(3);
  offs[0] = 0;
  offs[1] = n / 2;
  offs[2] = n;
  const auto rle = rle::compress(dev, values.span(), offs.span());
  auto back = dev.alloc<float>(static_cast<std::size_t>(n));
  rle::decompress(dev, rle, back);
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(back[static_cast<std::size_t>(i)],
              values[static_cast<std::size_t>(i)]);
  }
}

TEST(AccessAuditOverRelease, CountersTrackWithoutAudit) {
  analysis::set_audit_enabled(false);
  device::DeviceAllocator a(1000);
  a.acquire(100);
  a.release(300);  // 200 B over
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.releases(), 1u);
  EXPECT_EQ(a.over_releases(), 1u);
  EXPECT_EQ(a.over_released_bytes(), 200u);
  a.acquire(50);
  a.release(50);
  EXPECT_EQ(a.releases(), 2u);
  EXPECT_EQ(a.over_releases(), 1u);
}

TEST(AccessAuditOverReleaseDeathTest, AbortsWithReportWhenAudited) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        analysis::set_audit_enabled(true);
        device::DeviceAllocator a(1000);
        a.acquire(100);
        a.release(300);
      },
      "over-release: released 300 bytes with only 100 in use");
}

}  // namespace
}  // namespace gbdt
