// Tests for the data substrate: sparse dataset container, CSC attribute
// lists (host and device builds must agree exactly), dense matrix fill,
// LibSVM round trips, synthetic generator statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "data/csc_matrix.h"
#include "data/dataset.h"
#include "data/dense_matrix.h"
#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt::data {
namespace {

using device::Device;
using device::DeviceConfig;

/// The running example of paper Table I: 4 instances, 4 attributes.
Dataset paper_table1() {
  Dataset ds(4);
  const std::vector<std::vector<Entry>> rows = {
      {{2, 0.1f}},
      {{0, 1.2f}, {2, 0.1f}, {3, 0.6f}},
      {{0, 0.5f}, {1, 1.0f}},
      {{0, 1.2f}, {2, 2.0f}},
  };
  const std::vector<float> labels = {0.f, 1.f, 0.f, 1.f};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ds.add_instance(rows[i], labels[i]);
  }
  return ds;
}

TEST(Dataset, BasicAccessors) {
  const auto ds = paper_table1();
  EXPECT_EQ(ds.n_instances(), 4);
  EXPECT_EQ(ds.n_attributes(), 4);
  EXPECT_EQ(ds.n_entries(), 8);
  EXPECT_DOUBLE_EQ(ds.density(), 8.0 / 16.0);
  ASSERT_EQ(ds.instance(1).size(), 3u);
  EXPECT_EQ(ds.instance(1)[2].attr, 3);
  EXPECT_FLOAT_EQ(ds.instance(1)[2].value, 0.6f);
  EXPECT_EQ(ds.instance(0).size(), 1u);
}

TEST(Dataset, MemoryFootprints) {
  const auto ds = paper_table1();
  EXPECT_EQ(ds.dense_bytes(), 16 * sizeof(float) + 4 * sizeof(float));
  EXPECT_LT(ds.sparse_bytes(), ds.dense_bytes() * 4);  // sanity only
  EXPECT_GT(ds.sparse_bytes(), 0u);
}

TEST(Dataset, SplitAtPreservesInstances) {
  const auto ds = paper_table1();
  const auto [a, b] = ds.split_at(3);
  EXPECT_EQ(a.n_instances(), 3);
  EXPECT_EQ(b.n_instances(), 1);
  EXPECT_EQ(b.instance(0).size(), 2u);
  EXPECT_EQ(b.labels()[0], 1.f);
  EXPECT_EQ(a.n_attributes(), 4);
}

TEST(CscHost, MatchesPaperSortedLists) {
  // Section II-A sorted attribute lists:
  //   a1: (x2,1.2) (x4,1.2) (x3,0.5)   a2: (x3,1.0)
  //   a3: (x4,2.0) (x2,0.1) (x1,0.1)   a4: (x2,0.6)
  const auto csc = build_csc_host(paper_table1());
  ASSERT_EQ(csc.n_entries(), 8);
  const std::vector<std::int64_t> want_offs{0, 3, 4, 7, 8};
  EXPECT_EQ(csc.col_offsets, want_offs);
  const std::vector<float> want_vals{1.2f, 1.2f, 0.5f, 1.0f,
                                     2.0f, 0.1f, 0.1f, 0.6f};
  const std::vector<std::int32_t> want_ids{1, 3, 2, 2, 3, 0, 1, 1};
  EXPECT_EQ(csc.values, want_vals);
  EXPECT_EQ(csc.inst_ids, want_ids);
}

TEST(CscDevice, AgreesWithHostBuild) {
  for (unsigned seed : {1u, 2u, 3u}) {
    SyntheticSpec spec;
    spec.n_instances = 500;
    spec.n_attributes = 40;
    spec.density = 0.3;
    spec.distinct_values = 6;  // ties exercise stable ordering
    spec.seed = seed;
    const auto ds = generate(spec);
    const auto host = build_csc_host(ds);

    Device dev(DeviceConfig::titan_x_pascal());
    const auto on_dev = build_csc_device(dev, ds);
    ASSERT_EQ(on_dev.values.size(), host.values.size());
    for (std::size_t i = 0; i < host.values.size(); ++i) {
      ASSERT_EQ(on_dev.values[i], host.values[i]) << i;
      ASSERT_EQ(on_dev.inst_ids[i], host.inst_ids[i]) << i;
    }
    for (std::size_t a = 0; a < host.col_offsets.size(); ++a) {
      ASSERT_EQ(on_dev.col_offsets[a], host.col_offsets[a]) << a;
    }
    // The build must have moved the entries over the modeled PCI-e link.
    EXPECT_GT(dev.timeline().bytes_to_device, 0u);
  }
}

TEST(CscDevice, ColumnsSortedDescendingWithStableTies) {
  SyntheticSpec spec;
  spec.n_instances = 300;
  spec.n_attributes = 10;
  spec.density = 0.5;
  spec.distinct_values = 3;
  const auto ds = generate(spec);
  Device dev(DeviceConfig::titan_x_pascal());
  const auto csc = build_csc_device(dev, ds);
  for (std::int64_t a = 0; a < csc.n_attributes; ++a) {
    for (std::int64_t e = csc.col_offsets[static_cast<std::size_t>(a)] + 1;
         e < csc.col_offsets[static_cast<std::size_t>(a) + 1]; ++e) {
      const auto u = static_cast<std::size_t>(e);
      ASSERT_GE(csc.values[u - 1], csc.values[u]);
      if (csc.values[u - 1] == csc.values[u]) {
        ASSERT_LT(csc.inst_ids[u - 1], csc.inst_ids[u]);  // stable ties
      }
    }
  }
}

TEST(DenseMatrix, FillsMissingWithZero) {
  const DenseMatrix m(paper_table1());
  EXPECT_EQ(m.n_instances(), 4);
  EXPECT_EQ(m.n_attributes(), 4);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.f);  // missing -> 0
  EXPECT_FLOAT_EQ(m.at(0, 2), 0.1f);
  EXPECT_FLOAT_EQ(m.at(1, 3), 0.6f);
  EXPECT_FLOAT_EQ(m.at(3, 2), 2.0f);
  EXPECT_EQ(m.bytes(), 16 * sizeof(float));
  EXPECT_EQ(DenseMatrix::bytes_for(paper_table1()), 16 * sizeof(float));
}

TEST(LibsvmIo, ParsesBasicFile) {
  std::istringstream in(
      "1.5 1:0.5 3:2.25\n"
      "-1 2:1\n"
      "0  # a comment-only payload\n");
  const auto ds = read_libsvm(in);
  EXPECT_EQ(ds.n_instances(), 3);
  EXPECT_EQ(ds.n_attributes(), 3);
  EXPECT_FLOAT_EQ(ds.labels()[0], 1.5f);
  ASSERT_EQ(ds.instance(0).size(), 2u);
  EXPECT_EQ(ds.instance(0)[1].attr, 2);  // 1-based "3" -> 0-based 2
  EXPECT_FLOAT_EQ(ds.instance(0)[1].value, 2.25f);
  EXPECT_EQ(ds.instance(2).size(), 0u);
}

TEST(LibsvmIo, RejectsMalformedInput) {
  {
    std::istringstream in("1 2.5\n");
    EXPECT_THROW((void)read_libsvm(in), std::runtime_error);
  }
  {
    std::istringstream in("1 0:1\n");  // index must be >= 1
    EXPECT_THROW((void)read_libsvm(in), std::runtime_error);
  }
  {
    std::istringstream in("1 3:1 2:1\n");  // not increasing
    EXPECT_THROW((void)read_libsvm(in), std::runtime_error);
  }
  {
    std::istringstream in("1 2:abc\n");
    EXPECT_THROW((void)read_libsvm(in), std::runtime_error);
  }
}

TEST(LibsvmIo, RoundTrips) {
  SyntheticSpec spec;
  spec.n_instances = 200;
  spec.n_attributes = 30;
  spec.density = 0.4;
  const auto ds = generate(spec);
  std::stringstream buf;
  write_libsvm(ds, buf);
  const auto back = read_libsvm(buf);
  ASSERT_EQ(back.n_instances(), ds.n_instances());
  // Width can shrink if the last attribute never appears; entries must match.
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    const auto a = ds.instance(i);
    const auto b = back.instance(i);
    ASSERT_EQ(a.size(), b.size()) << i;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].attr, b[k].attr);
      EXPECT_FLOAT_EQ(a[k].value, b[k].value);
    }
    EXPECT_FLOAT_EQ(ds.labels()[static_cast<std::size_t>(i)],
                    back.labels()[static_cast<std::size_t>(i)]);
  }
}

TEST(Synthetic, RespectsShapeParameters) {
  SyntheticSpec spec;
  spec.n_instances = 2000;
  spec.n_attributes = 100;
  spec.density = 0.25;
  spec.seed = 9;
  const auto ds = generate(spec);
  EXPECT_EQ(ds.n_instances(), 2000);
  EXPECT_EQ(ds.n_attributes(), 100);
  EXPECT_NEAR(ds.density(), 0.25, 0.02);
}

TEST(Synthetic, DistinctValuesBoundsCardinality) {
  SyntheticSpec spec;
  spec.n_instances = 3000;
  spec.n_attributes = 5;
  spec.distinct_values = 4;
  const auto ds = generate(spec);
  std::map<std::int32_t, std::map<float, int>> per_attr;
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    for (const auto& e : ds.instance(i)) ++per_attr[e.attr][e.value];
  }
  for (const auto& [attr, vals] : per_attr) {
    EXPECT_LE(vals.size(), 4u) << attr;
  }
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticSpec spec;
  spec.n_instances = 100;
  spec.n_attributes = 10;
  spec.density = 0.5;
  const auto a = generate(spec);
  const auto b = generate(spec);
  EXPECT_EQ(a.entries(), b.entries());
  spec.seed += 1;
  const auto c = generate(spec);
  EXPECT_NE(a.entries(), c.entries());
}

TEST(Synthetic, BinaryLabelsAreBinary) {
  SyntheticSpec spec;
  spec.n_instances = 500;
  spec.n_attributes = 10;
  spec.binary_labels = true;
  const auto ds = generate(spec);
  int ones = 0;
  for (float y : ds.labels()) {
    ASSERT_TRUE(y == 0.f || y == 1.f);
    ones += y == 1.f;
  }
  // Both classes occur.
  EXPECT_GT(ones, 50);
  EXPECT_LT(ones, 450);
}

TEST(Synthetic, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.n_instances = 0;
  EXPECT_THROW((void)generate(spec), std::invalid_argument);
  spec.n_instances = 10;
  spec.density = 0.0;
  EXPECT_THROW((void)generate(spec), std::invalid_argument);
  spec.density = 1.5;
  EXPECT_THROW((void)generate(spec), std::invalid_argument);
}

TEST(PaperRegistry, HasEightDatasetsInPaperRegimes) {
  const auto all = paper_datasets(0.1);
  ASSERT_EQ(all.size(), 8u);
  const auto& news = paper_dataset("news20", 0.1);
  EXPECT_GT(news.spec.n_attributes, 10000);  // high-dimensional regime
  EXPECT_LT(news.spec.density, 0.01);
  EXPECT_GT(news.spec.distinct_values, 0);   // RLE-compressible
  const auto& susy = paper_dataset("susy", 0.1);
  EXPECT_LT(susy.spec.n_attributes, 30);     // dense low-dim regime
  EXPECT_GT(susy.spec.density, 0.9);
  EXPECT_FALSE(susy.paper_xgb_gpu_fails);    // the one dataset xgbst-gpu ran
  EXPECT_TRUE(news.paper_xgb_gpu_fails);
  EXPECT_THROW((void)paper_dataset("nope"), std::out_of_range);
}

TEST(PaperRegistry, ScaleControlsCardinality) {
  const auto big = paper_dataset("higgs", 1.0);
  const auto small = paper_dataset("higgs", 0.01);
  EXPECT_EQ(big.spec.n_attributes, small.spec.n_attributes);
  EXPECT_GT(big.spec.n_instances, 10 * small.spec.n_instances);
  EXPECT_THROW((void)paper_datasets(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace gbdt::data
