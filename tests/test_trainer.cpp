// Integration tests of the GPU-GBDT trainer against the CPU exact-greedy
// oracle and across its own configuration space (RLE on/off, direct vs
// decompress splits, SmartGD vs naive gradients) — the paper's correctness
// claims: identical trees, identical RMSE.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/xgb_exact.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "primitives/fused_split.h"

namespace gbdt {
namespace {

using baseline::XgbExactTrainer;
using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

SyntheticSpec small_spec(unsigned seed = 7) {
  SyntheticSpec s;
  s.n_instances = 600;
  s.n_attributes = 12;
  s.density = 0.6;
  s.distinct_values = 0;  // continuous
  s.seed = seed;
  return s;
}

GBDTParam small_param() {
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 5;
  p.eta = 0.5;
  return p;
}

void expect_same_forest(const std::vector<Tree>& a, const std::vector<Tree>& b,
                        double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(a[t], b[t], tol))
        << "tree " << t << " differs:\n"
        << a[t].dump() << "\nvs\n"
        << b[t].dump();
  }
}

TEST(Trainer, BuildsRequestedNumberOfTrees) {
  const auto ds = generate(small_spec());
  Device dev(DeviceConfig::titan_x_pascal());
  GpuGbdtTrainer trainer(dev, small_param());
  const auto report = trainer.train(ds);
  EXPECT_EQ(report.trees.size(), 5u);
  for (const auto& t : report.trees) {
    EXPECT_LE(t.depth(), 4);
    EXPECT_GE(t.n_leaves(), 2);
  }
  EXPECT_GT(report.modeled.total(), 0.0);
  EXPECT_GT(report.peak_device_bytes, 0u);
}

TEST(Trainer, MatchesCpuOracleExactly) {
  // The paper's core correctness claim: GPU-GBDT and CPU XGBoost construct
  // identical trees.
  for (unsigned seed : {1u, 2u, 3u}) {
    auto spec = small_spec(seed);
    const auto ds = generate(spec);
    auto param = small_param();
    param.use_rle = false;

    Device dev(DeviceConfig::titan_x_pascal());
    const auto gpu = GpuGbdtTrainer(dev, param).train(ds);
    const auto cpu = XgbExactTrainer(param).train(ds);
    expect_same_forest(gpu.trees, cpu.trees, 0.0);  // bitwise identical

    const double gpu_rmse = rmse(gpu.train_scores, ds.labels());
    const double cpu_rmse = rmse(cpu.train_scores, ds.labels());
    EXPECT_DOUBLE_EQ(gpu_rmse, cpu_rmse) << "seed " << seed;
  }
}

TEST(Trainer, RlePathMatchesSparsePath) {
  // RLE compression is lossless for split finding: forcing it on must give
  // the same forest (categorical data so compression actually bites).
  auto spec = small_spec(11);
  spec.distinct_values = 5;
  const auto ds = generate(spec);

  auto p_sparse = small_param();
  p_sparse.use_rle = false;
  auto p_rle = small_param();
  p_rle.force_rle = true;

  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto sparse = GpuGbdtTrainer(dev1, p_sparse).train(ds);
  const auto rle = GpuGbdtTrainer(dev2, p_rle).train(ds);
  EXPECT_TRUE(rle.used_rle);
  EXPECT_GT(rle.rle_ratio, 2.0);
  expect_same_forest(sparse.trees, rle.trees, 1e-7);
}

TEST(Trainer, DirectRleSplitMatchesDecompressSplit) {
  auto spec = small_spec(13);
  spec.distinct_values = 4;
  const auto ds = generate(spec);

  auto p_direct = small_param();
  p_direct.force_rle = true;
  p_direct.use_direct_rle_split = true;
  auto p_decomp = p_direct;
  p_decomp.use_direct_rle_split = false;

  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto direct = GpuGbdtTrainer(dev1, p_direct).train(ds);
  const auto decomp = GpuGbdtTrainer(dev2, p_decomp).train(ds);
  expect_same_forest(direct.trees, decomp.trees, 0.0);
}

TEST(Trainer, DirectRleSplitIsCheaperAtScale) {
  // Paper Figure 9: the decompress-partition-recompress variant costs more
  // than Directly-Split-RLE.  The effect needs enough elements per run that
  // per-element (de)compression work beats the direct path's extra kernel
  // launches, so this runs on a larger, highly compressible dataset.
  SyntheticSpec spec;
  spec.n_instances = 20000;
  spec.n_attributes = 20;
  spec.density = 1.0;
  spec.distinct_values = 3;
  spec.seed = 99;
  const auto ds = generate(spec);

  GBDTParam p;
  p.depth = 4;
  p.n_trees = 3;
  p.force_rle = true;
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto direct = GpuGbdtTrainer(dev1, p).train(ds);
  p.use_direct_rle_split = false;
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto decomp = GpuGbdtTrainer(dev2, p).train(ds);
  expect_same_forest(direct.trees, decomp.trees, 0.0);
  EXPECT_LT(direct.modeled.split_node, decomp.modeled.split_node);
}

TEST(Trainer, SmartGdMatchesNaiveTraversal) {
  const auto ds = generate(small_spec(17));
  auto p_smart = small_param();
  p_smart.use_smart_gd = true;
  auto p_naive = p_smart;
  p_naive.use_smart_gd = false;

  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto smart = GpuGbdtTrainer(dev1, p_smart).train(ds);
  const auto naive = GpuGbdtTrainer(dev2, p_naive).train(ds);
  expect_same_forest(smart.trees, naive.trees, 0.0);
  ASSERT_EQ(smart.train_scores.size(), naive.train_scores.size());
  for (std::size_t i = 0; i < smart.train_scores.size(); ++i) {
    ASSERT_DOUBLE_EQ(smart.train_scores[i], naive.train_scores[i]) << i;
  }
  // Paper Figure 9: SmartGD is one of the two biggest wins.
  EXPECT_LT(smart.modeled.gradients, naive.modeled.gradients);
}

TEST(Trainer, TrainingReducesRmse) {
  const auto ds = generate(small_spec(19));
  Device dev(DeviceConfig::titan_x_pascal());
  auto p1 = small_param();
  p1.n_trees = 1;
  auto p20 = small_param();
  p20.n_trees = 20;
  const auto r1 = GpuGbdtTrainer(dev, p1).train(ds);
  const auto r20 = GpuGbdtTrainer(dev, p20).train(ds);
  const double rmse1 = rmse(r1.train_scores, ds.labels());
  const double rmse20 = rmse(r20.train_scores, ds.labels());
  EXPECT_LT(rmse20, rmse1);
  EXPECT_LT(rmse20, 0.5);
}

TEST(Trainer, TrainScoresEqualModelPredictions) {
  const auto ds = generate(small_spec(23));
  Device dev(DeviceConfig::titan_x_pascal());
  auto [model, report] = GBDTModel::train(dev, ds, small_param());
  const auto host_pred = model.predict(ds);
  ASSERT_EQ(host_pred.size(), report.train_scores.size());
  for (std::size_t i = 0; i < host_pred.size(); ++i) {
    ASSERT_NEAR(host_pred[i], report.train_scores[i], 1e-6) << i;
  }
}

TEST(Trainer, DevicePredictionMatchesHost) {
  const auto ds = generate(small_spec(29));
  Device dev(DeviceConfig::titan_x_pascal());
  auto [model, report] = GBDTModel::train(dev, ds, small_param());
  const auto host = model.predict(ds);
  const auto device = model.predict_device(dev, ds);
  ASSERT_EQ(host.size(), device.size());
  for (std::size_t i = 0; i < host.size(); ++i) {
    ASSERT_NEAR(host[i], device[i], 1e-9) << i;
  }
}

TEST(Trainer, GammaPrunesSplits) {
  const auto ds = generate(small_spec(31));
  Device dev(DeviceConfig::titan_x_pascal());
  auto p_free = small_param();
  p_free.gamma = 0.0;
  auto p_strict = small_param();
  p_strict.gamma = 1e7;  // nothing should clear this bar
  const auto free_r = GpuGbdtTrainer(dev, p_free).train(ds);
  const auto strict_r = GpuGbdtTrainer(dev, p_strict).train(ds);
  EXPECT_GT(free_r.trees[0].n_leaves(), 1);
  for (const auto& t : strict_r.trees) {
    EXPECT_EQ(t.n_leaves(), 1);  // root stays a leaf
  }
}

TEST(Trainer, DepthOneGivesStumps) {
  const auto ds = generate(small_spec(37));
  Device dev(DeviceConfig::titan_x_pascal());
  auto p = small_param();
  p.depth = 1;
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  for (const auto& t : r.trees) {
    EXPECT_LE(t.n_leaves(), 2);
    EXPECT_LE(t.depth(), 1);
  }
}

TEST(Trainer, DeterministicAcrossRuns) {
  const auto ds = generate(small_spec(41));
  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto a = GpuGbdtTrainer(dev1, small_param()).train(ds);
  const auto b = GpuGbdtTrainer(dev2, small_param()).train(ds);
  expect_same_forest(a.trees, b.trees, 0.0);
  EXPECT_EQ(a.train_scores, b.train_scores);
  EXPECT_DOUBLE_EQ(a.modeled.total(), b.modeled.total());
}

TEST(Trainer, RejectsBadParams) {
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 0;
  EXPECT_THROW(GpuGbdtTrainer(dev, p), std::invalid_argument);
  p = GBDTParam{};
  p.n_trees = 0;
  EXPECT_THROW(GpuGbdtTrainer(dev, p), std::invalid_argument);
  p = GBDTParam{};
  p.gamma = -1;
  EXPECT_THROW(GpuGbdtTrainer(dev, p), std::invalid_argument);
}

TEST(Trainer, RejectsEmptyDataset) {
  Device dev(DeviceConfig::titan_x_pascal());
  data::Dataset empty(5);
  GpuGbdtTrainer trainer(dev, small_param());
  EXPECT_THROW((void)trainer.train(empty), std::invalid_argument);
}

TEST(Trainer, RleGateFollowsPaperFormula) {
  // dim/card above R -> compressed; below -> not.
  SyntheticSpec wide = small_spec(43);
  wide.n_instances = 100;
  wide.n_attributes = 2000;  // ratio 20 > R = 10
  wide.density = 0.05;
  wide.distinct_values = 4;
  const auto ds_wide = generate(wide);
  Device dev(DeviceConfig::titan_x_pascal());
  auto p = small_param();
  p.n_trees = 1;
  const auto r_wide = GpuGbdtTrainer(dev, p).train(ds_wide);
  EXPECT_TRUE(r_wide.used_rle);

  const auto ds_tall = generate(small_spec(47));  // ratio 12/600 << 10
  const auto r_tall = GpuGbdtTrainer(dev, p).train(ds_tall);
  EXPECT_FALSE(r_tall.used_rle);
}

TEST(Trainer, LogisticLossLearnsBinaryLabels) {
  auto spec = small_spec(53);
  spec.binary_labels = true;
  const auto ds = generate(spec);
  Device dev(DeviceConfig::titan_x_pascal());
  auto p = small_param();
  p.loss = LossKind::kLogistic;
  p.n_trees = 20;
  auto [model, report] = GBDTModel::train(dev, ds, p);
  const auto prob = model.transform_scores(report.train_scores);
  EXPECT_LT(error_rate(prob, ds.labels()), 0.25);
  for (double v : prob) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST(Trainer, PhaseTimingsAreDominatedByFindSplit) {
  // Paper Section IV-A reports finding the best split at ~95% of GPU-GBDT
  // time — a claim about the *unfused* pipeline, so the historical path is
  // forced here.  In our cost model the order-preserving partition is
  // attributed more traffic than the paper's accounting, so the measured
  // share lands near 50-60% — find_split must still be the single largest
  // phase (the deviation is recorded in EXPERIMENTS.md).
  auto spec = small_spec(59);
  spec.n_instances = 8000;
  const auto ds = generate(spec);
  auto p = small_param();
  p.depth = 6;
  p.n_trees = 10;
  const bool was_fused = prim::fused_split_enabled();
  prim::set_fused_split_enabled(false);
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  prim::set_fused_split_enabled(was_fused);
  EXPECT_GT(r.modeled.find_split, 0.8 * r.modeled.split_node);
  EXPECT_GT(r.modeled.find_split, r.modeled.gradients);
  EXPECT_GT(r.modeled.find_split, r.modeled.transfer);
  EXPECT_GT(r.modeled.find_split / r.modeled.total(), 0.35);
  EXPECT_GT(r.modeled.split_node, 0.0);
  EXPECT_GT(r.modeled.gradients, 0.0);
  EXPECT_GT(r.modeled.transfer, 0.0);

  // The fused pipeline exists to shrink exactly this phase: same data, same
  // parameters, at least 25% less modeled find_split time.
  Device dev_fused(DeviceConfig::titan_x_pascal());
  const auto rf = GpuGbdtTrainer(dev_fused, p).train(ds);
  EXPECT_LT(rf.modeled.find_split, 0.75 * r.modeled.find_split);
}

}  // namespace
}  // namespace gbdt
