// Tests of the differential-fuzzing harness itself: case generation is a
// pure function of the seed, the trainer-path equivalence oracle passes on
// known-good seeds, injected faults are caught by the invariant checker
// (and only while checking is armed), and the minimizer shrinks failing
// cases to small reproducers with exact replay commands.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "testing/case_gen.h"
#include "testing/invariants.h"
#include "testing/oracle.h"

namespace gbdt::testing {
namespace {

/// Resets fault-injection and the invariant flag around every test, so an
/// assertion failure cannot leak an armed fault into the rest of the suite.
class FuzzOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault_injection() = {};
    set_invariants_enabled(false);
  }
  void TearDown() override {
    fault_injection() = {};
    set_invariants_enabled(false);
  }
};

/// Small case exercising every leg (sparse partition, both RLE strategies,
/// 3-way sharding, several OOC chunks) in a few milliseconds.
FuzzCase small_case() {
  FuzzCase c = FuzzCase::from_seed(0x5e1f7e57ull);
  c.n_instances = 120;
  c.n_attributes = 6;
  c.depth = 3;
  c.n_trees = 2;
  return c;
}

TEST_F(FuzzOracleTest, CaseGenerationIsAFunctionOfTheSeed) {
  const FuzzCase a = FuzzCase::from_seed(0xabcdef0123ull);
  const FuzzCase b = FuzzCase::from_seed(0xabcdef0123ull);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.dataset_spec().seed, b.dataset_spec().seed);

  const FuzzCase c = FuzzCase::from_seed(0xabcdef0124ull);
  EXPECT_NE(a.describe(), c.describe());
}

TEST_F(FuzzOracleTest, DatasetSeedSurvivesMinimizerShrinks) {
  // The generation seed depends only on the case seed, so a shrunk case
  // replayed via --seed plus field overrides sees the same value stream.
  const FuzzCase fresh = FuzzCase::from_seed(0x77ull);
  FuzzCase shrunk = fresh;
  shrunk.n_instances = 10;
  shrunk.n_attributes = 2;
  EXPECT_EQ(fresh.dataset_spec().seed, shrunk.dataset_spec().seed);
}

TEST_F(FuzzOracleTest, SplitMixStreamIsStable) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST_F(FuzzOracleTest, OraclePassesOnKnownGoodSeeds) {
  // First seeds of gbdt_fuzz's default stream — the smoke run's prefix.
  std::uint64_t stream = 0x9d1cebab5eedull;
  for (int i = 0; i < 3; ++i) {
    const FuzzCase c = FuzzCase::from_seed(splitmix64(stream));
    const OracleResult r = run_oracle(c, /*check_invariants=*/true);
    EXPECT_TRUE(r.pass()) << c.describe() << "\n" << r.failure_report();
  }
}

TEST_F(FuzzOracleTest, OracleRunsEveryLeg) {
  const OracleResult r = run_oracle(small_case(), /*check_invariants=*/true);
  ASSERT_EQ(r.legs.size(), 8u);
  EXPECT_EQ(r.legs[0].name, "gpu_sparse");
  EXPECT_EQ(r.legs[1].name, "gpu_rle_direct");
  EXPECT_EQ(r.legs[2].name, "gpu_rle_fallback");
  const auto shards = std::min<std::int64_t>(small_case().n_gpus,
                                             small_case().n_attributes);
  EXPECT_EQ(r.legs[3].name, "multigpu_x" + std::to_string(shards));
  EXPECT_EQ(r.legs[4].name, "out_of_core");
  EXPECT_EQ(r.legs[5].name, "unfused_vs_fused_sparse");
  EXPECT_EQ(r.legs[6].name, "unfused_vs_fused_rle");
  EXPECT_EQ(r.legs[7].name, "hist_vs_exact");
  for (const auto& leg : r.legs) EXPECT_TRUE(leg.ran) << leg.name;
  // The sparse leg is held to bitwise equality with the CPU reference.
  EXPECT_TRUE(r.legs[0].exact) << r.legs[0].detail;
  // Both RLE strategies must account compression identically.
  EXPECT_EQ(r.legs[1].rle_ratio, r.legs[2].rle_ratio);
  // The GBDT_UNFUSED_SPLIT hatch is held to bitwise equality with fused.
  EXPECT_TRUE(r.legs[5].exact) << r.legs[5].detail;
  EXPECT_TRUE(r.legs[6].exact) << r.legs[6].detail;
  // The histogram leg is approximate: quality equivalence, never exact.
  EXPECT_TRUE(r.legs[7].quality_equivalent) << r.legs[7].detail;
  EXPECT_FALSE(r.legs[7].exact);
}

TEST_F(FuzzOracleTest, HistOracleRunsReferenceAndHistLegOnly) {
  const OracleResult r =
      run_hist_oracle(small_case(), /*check_invariants=*/true);
  ASSERT_EQ(r.legs.size(), 1u);
  EXPECT_EQ(r.legs[0].name, "hist_vs_exact");
  EXPECT_TRUE(r.legs[0].ran);
  EXPECT_TRUE(r.pass()) << r.failure_report();
}

TEST_F(FuzzOracleTest, HistSubtractionFaultIsCaughtOnlyWhileArmed) {
  fault_injection().break_hist_subtraction = true;
  const OracleResult bad =
      run_hist_oracle(small_case(), /*check_invariants=*/true);
  EXPECT_FALSE(bad.pass());
  EXPECT_TRUE(bad.legs[0].invariant_violation) << bad.legs[0].detail;

  const OracleResult off =
      run_hist_oracle(small_case(), /*check_invariants=*/false);
  EXPECT_TRUE(off.pass()) << off.failure_report();
}

TEST_F(FuzzOracleTest, PartitionFaultIsCaughtOnlyWhileArmed) {
  fault_injection().break_partition_order = true;

  const OracleResult bad = run_oracle(small_case(), /*check_invariants=*/true);
  EXPECT_FALSE(bad.pass());
  bool caught = false;
  for (const auto& leg : bad.legs) caught |= leg.invariant_violation;
  EXPECT_TRUE(caught) << "no leg reported an invariant violation";

  // With checking off the armed fault must be inert (hooks are free).
  const OracleResult off = run_oracle(small_case(), /*check_invariants=*/false);
  EXPECT_TRUE(off.pass()) << off.failure_report();

  fault_injection() = {};
  const OracleResult good = run_oracle(small_case(), /*check_invariants=*/true);
  EXPECT_TRUE(good.pass()) << good.failure_report();
}

TEST_F(FuzzOracleTest, ChildCountFaultIsCaughtByConservationCheck) {
  fault_injection().break_child_counts = true;
  const OracleResult bad = run_oracle(small_case(), /*check_invariants=*/true);
  EXPECT_FALSE(bad.pass());
  bool caught = false;
  for (const auto& leg : bad.legs) {
    if (leg.invariant_violation) {
      caught = true;
      EXPECT_NE(leg.detail.find("invariant violation"), std::string::npos);
    }
  }
  EXPECT_TRUE(caught);
}

TEST_F(FuzzOracleTest, MinimizerShrinksAFailingCase) {
  // An always-firing fault makes every case fail, so the minimizer should
  // drive each dimension to its floor.
  fault_injection().break_partition_order = true;
  const FuzzCase big = FuzzCase::from_seed(0xb16ull);
  const FuzzCase small = minimize_case(big, /*check_invariants=*/true);
  EXPECT_EQ(small.n_instances, 10);
  EXPECT_EQ(small.n_attributes, 2);
  EXPECT_EQ(small.n_trees, 1);
  EXPECT_EQ(small.depth, 1);
  EXPECT_FALSE(run_oracle(small, /*check_invariants=*/true).pass());

  // The replay command carries the shrunken fields explicitly.
  const std::string repro = small.repro_command();
  EXPECT_NE(repro.find("--seed 0xb16"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--rows 10"), std::string::npos) << repro;
}

TEST_F(FuzzOracleTest, ReproCommandOmitsUnchangedFields) {
  const FuzzCase fresh = FuzzCase::from_seed(0x1234ull);
  const std::string repro = fresh.repro_command();
  EXPECT_NE(repro.find("--seed 0x1234"), std::string::npos);
  EXPECT_EQ(repro.find("--rows"), std::string::npos) << repro;
  EXPECT_EQ(repro.find("--cols"), std::string::npos) << repro;
}

}  // namespace
}  // namespace gbdt::testing
