// Happens-before race detector: the fault-injection kernels must throw
// RaceViolation with actionable reports, the event-ordered fix and every
// default-stream / sync-ordered program must stay silent, and the shadow
// state must honour buffer frees (address reuse cannot inherit stale
// accesses).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/fault_kernels.h"
#include "analysis/hb_race.h"
#include "device/device_context.h"
#include "device/device_memory.h"

namespace gbdt {
namespace {

using analysis::HbRaceDetector;
using analysis::LaunchFootprint;
using analysis::RaceViolation;

device::DeviceConfig small_config() {
  device::DeviceConfig c = device::DeviceConfig::titan_x_pascal();
  c.global_mem_bytes = 1 << 20;
  return c;
}

/// Arms the detector for the test body and restores the prior state on the
/// way out, so suites sharing the process-wide flag stay independent.
struct RaceDetectGuard {
  bool was = analysis::race_detect_enabled();
  RaceDetectGuard() { analysis::set_race_detect_enabled(true); }
  ~RaceDetectGuard() { analysis::set_race_detect_enabled(was); }
};

std::string violation_message(void (*fault)(device::Device&)) {
  RaceDetectGuard guard;
  device::Device dev(small_config());
  try {
    fault(dev);
  } catch (const RaceViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "fault kernel did not throw RaceViolation";
  return {};
}

TEST(HbRace, UnorderedWriteWriteIsCaughtWithBothOpsNamed) {
  const std::string msg = violation_message(&analysis::run_race_unordered_write);
  EXPECT_NE(msg.find("stream race violation"), std::string::npos) << msg;
  EXPECT_NE(msg.find("stream_race_write_a"), std::string::npos) << msg;
  EXPECT_NE(msg.find("stream_race_write_b"), std::string::npos) << msg;
  // The report must spell out the missing edge, not just the overlap.
  EXPECT_NE(msg.find("record_event"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wait_event"), std::string::npos) << msg;
}

TEST(HbRace, MissingEventWaitIsCaught) {
  const std::string msg =
      violation_message(&analysis::run_race_missing_event_wait);
  EXPECT_NE(msg.find("stream_race_upload"), std::string::npos) << msg;
  EXPECT_NE(msg.find("stream_race_consume"), std::string::npos) << msg;
}

TEST(HbRace, CopyOverlappingKernelIsCaught) {
  const std::string msg =
      violation_message(&analysis::run_race_copy_overlaps_kernel);
  EXPECT_NE(msg.find("stream_race_produce"), std::string::npos) << msg;
  EXPECT_NE(msg.find("stream_race_download"), std::string::npos) << msg;
}

TEST(HbRace, EventWaitFixedFormIsSilent) {
  RaceDetectGuard guard;
  device::Device dev(small_config());
  EXPECT_NO_THROW(analysis::run_race_event_wait_fixed(dev));
}

TEST(HbRace, DisabledDetectorNeverThrows) {
  const bool was = analysis::race_detect_enabled();
  analysis::set_race_detect_enabled(false);
  device::Device dev(small_config());
  EXPECT_NO_THROW(analysis::run_race_unordered_write(dev));
  analysis::set_race_detect_enabled(was);
}

TEST(HbRace, DefaultStreamProgramsNeverRace) {
  RaceDetectGuard guard;
  device::Device dev(small_config());
  const std::int64_t n = 64;
  auto buf = dev.alloc<float>(static_cast<std::size_t>(n));
  const auto sp = buf.span();
  // Two overlapping writes, but both on the legacy blocking stream: the
  // default stream joins and propagates every clock, so they are ordered.
  for (int pass = 0; pass < 2; ++pass) {
    dev.launch("stream_default_write", device::grid_for(n, 32), 32,
               [sp, n, pass](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i < n) sp[static_cast<std::size_t>(i)] =
                       static_cast<float>(pass);
                 });
                 b.writes_tile(sp, n);
               });
  }
  EXPECT_NO_THROW(dev.sync());
}

TEST(HbRace, HostSyncEstablishesCrossStreamEdge) {
  RaceDetectGuard guard;
  device::Device dev(small_config());
  const int s1 = dev.stream();
  const int s2 = dev.stream();
  const std::int64_t n = 64;
  auto buf = dev.alloc<float>(static_cast<std::size_t>(n));
  const auto sp = buf.span();
  const auto write_all = [sp, n](float v) {
    return [sp, n, v](device::BlockCtx& b) {
      b.for_each_thread([&](std::int64_t i) {
        if (i < n) sp[static_cast<std::size_t>(i)] = v;
      });
      b.writes_tile(sp, n);
    };
  };
  dev.launch_async("stream_sync_edge_a", s1, device::grid_for(n, 32), 32,
                   write_all(1.f));
  // sync(s1) joins s1 into the host clock; the later enqueue on s2 joins the
  // host clock, so the second write is ordered after the first.
  dev.sync(s1);
  dev.launch_async("stream_sync_edge_b", s2, device::grid_for(n, 32), 32,
                   write_all(2.f));
  EXPECT_NO_THROW(dev.sync());
}

TEST(HbRace, ReadReadSharingIsNotARace) {
  HbRaceDetector det;
  const int fake_base = 0;
  const void* base = &fake_base;
  LaunchFootprint::Map a;
  a[base] = {sizeof(float), 64, /*writes=*/{}, /*reads=*/{{0, 64}}};
  LaunchFootprint::Map b = a;
  det.on_op(1, "stream_reader_a", "kernel", std::move(a));
  EXPECT_NO_THROW(det.on_op(2, "stream_reader_b", "kernel", std::move(b)));
}

TEST(HbRace, UnorderedReadAfterWriteRaces) {
  HbRaceDetector det;
  const int fake_base = 0;
  const void* base = &fake_base;
  LaunchFootprint::Map w;
  w[base] = {sizeof(float), 64, /*writes=*/{{0, 64}}, /*reads=*/{}};
  LaunchFootprint::Map r;
  r[base] = {sizeof(float), 64, /*writes=*/{}, /*reads=*/{{32, 48}}};
  det.on_op(1, "stream_writer", "kernel", std::move(w));
  EXPECT_THROW(det.on_op(2, "stream_reader", "kernel", std::move(r)),
               RaceViolation);
}

TEST(HbRace, DisjointRangesDoNotRace) {
  HbRaceDetector det;
  const int fake_base = 0;
  const void* base = &fake_base;
  LaunchFootprint::Map a;
  a[base] = {sizeof(float), 64, /*writes=*/{{0, 32}}, /*reads=*/{}};
  LaunchFootprint::Map b;
  b[base] = {sizeof(float), 64, /*writes=*/{{32, 64}}, /*reads=*/{}};
  det.on_op(1, "stream_lo_half", "kernel", std::move(a));
  EXPECT_NO_THROW(det.on_op(2, "stream_hi_half", "kernel", std::move(b)));
}

TEST(HbRace, EventEdgeOrdersConflictingOps) {
  HbRaceDetector det;
  const int fake_base = 0;
  const void* base = &fake_base;
  LaunchFootprint::Map a;
  a[base] = {sizeof(float), 64, /*writes=*/{{0, 64}}, /*reads=*/{}};
  LaunchFootprint::Map b = a;
  det.on_op(1, "stream_first", "kernel", std::move(a));
  det.record_event(1, 7);
  det.wait_event(2, 7);
  EXPECT_NO_THROW(det.on_op(2, "stream_second", "kernel", std::move(b)));
}

TEST(HbRace, FreeClearsShadowSoAddressReuseIsClean) {
  HbRaceDetector det;
  const int fake_base = 0;
  const void* base = &fake_base;
  LaunchFootprint::Map a;
  a[base] = {sizeof(float), 64, /*writes=*/{{0, 64}}, /*reads=*/{}};
  LaunchFootprint::Map b = a;
  det.on_op(1, "stream_old_owner", "kernel", std::move(a));
  // The buffer is freed and a new allocation lands at the same address: the
  // unordered write from the old owner must not count against it.
  det.on_free(base);
  EXPECT_NO_THROW(det.on_op(2, "stream_new_owner", "kernel", std::move(b)));
}

TEST(HbRace, ResetDropsAllShadowState) {
  HbRaceDetector det;
  const int fake_base = 0;
  const void* base = &fake_base;
  LaunchFootprint::Map a;
  a[base] = {sizeof(float), 64, /*writes=*/{{0, 64}}, /*reads=*/{}};
  LaunchFootprint::Map b = a;
  det.on_op(1, "stream_before_reset", "kernel", std::move(a));
  det.reset();
  EXPECT_NO_THROW(det.on_op(2, "stream_after_reset", "kernel", std::move(b)));
}

}  // namespace
}  // namespace gbdt
