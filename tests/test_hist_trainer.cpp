// Tests for the histogram-based (approximate) trainer: learning quality
// relative to the exact trainer, bin-grid split semantics, feasibility
// limits, determinism.
#include <gtest/gtest.h>

#include <set>

#include "baselines/hist_trainer.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "primitives/histogram.h"

namespace gbdt::baseline {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

data::Dataset make_data(unsigned seed, std::int64_t n = 2000,
                        std::int64_t d = 16) {
  SyntheticSpec s;
  s.n_instances = n;
  s.n_attributes = d;
  s.density = 0.8;
  s.label_noise = 0.1;
  s.seed = seed;
  return generate(s);
}

GBDTParam small_param() {
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 8;
  return p;
}

TEST(HistTrainer, LearnsCloseToExact) {
  const auto ds = make_data(21);
  const auto p = small_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto exact = GpuGbdtTrainer(dev1, p).train(ds);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto hist = HistGbdtTrainer(dev2, p, 64).train(ds);

  const double exact_rmse = rmse(exact.train_scores, ds.labels());
  const double hist_rmse = rmse(hist.train_scores, ds.labels());
  // Approximate splits cannot beat exact enumeration by much, and with 64
  // quantile bins they should be close.
  EXPECT_GT(hist_rmse, exact_rmse - 1e-9);
  EXPECT_LT(hist_rmse, exact_rmse * 1.35 + 0.05);
}

TEST(HistTrainer, MoreBinsApproachExactQuality) {
  const auto ds = make_data(22);
  const auto p = small_param();
  double prev = 1e9;
  for (int bins : {4, 16, 256}) {
    Device dev(DeviceConfig::titan_x_pascal());
    const auto r = HistGbdtTrainer(dev, p, bins).train(ds);
    const double e = rmse(r.train_scores, ds.labels());
    EXPECT_LT(e, prev * 1.02) << bins;  // near-monotone improvement
    prev = e;
  }
}

TEST(HistTrainer, SplitValuesLieOnTheBinGrid) {
  // With very few bins, every split threshold must be one of <= 8 distinct
  // cut values per attribute.
  const auto ds = make_data(23, 1500, 6);
  GBDTParam p = small_param();
  p.n_trees = 4;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = HistGbdtTrainer(dev, p, 8).train(ds);
  std::map<std::int32_t, std::set<float>> per_attr;
  for (const auto& t : r.trees) {
    for (const auto& n : t.nodes()) {
      if (!n.is_leaf()) per_attr[n.attr].insert(n.split_value);
    }
  }
  for (const auto& [attr, values] : per_attr) {
    EXPECT_LE(values.size(), 8u) << "attr " << attr;
  }
}

TEST(HistTrainer, FasterThanExactPerModeledSecond) {
  // The histogram method skips sorted lists and partitioning; on dense
  // medium-dimensional data its modeled time per tree is lower.
  SyntheticSpec s;
  s.n_instances = 20000;
  s.n_attributes = 24;
  s.density = 1.0;
  s.seed = 24;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 6;
  p.n_trees = 5;
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto exact = GpuGbdtTrainer(dev1, p).train(ds);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto hist = HistGbdtTrainer(dev2, p, 64).train(ds);
  EXPECT_LT(hist.modeled_seconds, exact.modeled.total());
}

TEST(HistTrainer, RejectsInfeasibleHighDimensionalHistograms) {
  SyntheticSpec s;
  s.n_instances = 200;
  s.n_attributes = 50000;
  s.density = 0.001;
  s.seed = 25;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 12;  // 2^11 nodes x 50k attrs x 256 bins blows the device
  p.n_trees = 1;
  Device dev(DeviceConfig::titan_x_pascal());
  HistGbdtTrainer trainer(dev, p, 256);
  EXPECT_THROW((void)trainer.train(ds), std::invalid_argument);
}

TEST(HistTrainer, RejectsBadConfig) {
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  EXPECT_THROW(HistGbdtTrainer(dev, p, 0), std::invalid_argument);
  EXPECT_THROW(HistGbdtTrainer(dev, p, -3), std::invalid_argument);
  EXPECT_THROW(HistGbdtTrainer(dev, p, 1 << 20), std::invalid_argument);
  HistGbdtTrainer one_bin_ok(dev, p, 1);  // legal: miss-direction splits only
  HistGbdtTrainer ok(dev, p, 64);
  data::Dataset empty(3);
  EXPECT_THROW((void)ok.train(empty), std::invalid_argument);
}

// ---- build_cuts degenerate shapes (shared with the device trainer) --------

TEST(HistTrainer, BuildCutsAllEqualColumnIsSingleCleanBin) {
  const auto cuts = hist::build_cuts({3.5f, 3.5f, 3.5f, 3.5f}, 16);
  ASSERT_EQ(cuts.bin_low.size(), 1u);
  EXPECT_EQ(cuts.bin_low[0], 3.5f);
  EXPECT_EQ(cuts.bin_of(3.5f), 0);
}

TEST(HistTrainer, BuildCutsDominantRunStillYieldsABoundary) {
  // One value dominates: the greedy chunking used to swallow the whole
  // column into a single bin whose boundary never splits.  Any column with
  // two distinct values must produce at least two bins.
  const auto cuts = hist::build_cuts({9.f, 1.f, 1.f, 1.f, 1.f, 1.f}, 2);
  ASSERT_EQ(cuts.bin_low.size(), 2u);
  EXPECT_EQ(cuts.bin_of(9.f), 0);
  EXPECT_EQ(cuts.bin_of(1.f), 1);
}

TEST(HistTrainer, BuildCutsFewDistinctValuesGetOneBinEach) {
  const auto cuts = hist::build_cuts({5.f, 1.f, 1.f, 1.f, 1.f}, 2);
  ASSERT_EQ(cuts.bin_low.size(), 2u);
  EXPECT_EQ(cuts.bin_low[0], 5.f);
  EXPECT_EQ(cuts.bin_low[1], 1.f);
  // n_bins = 1 collapses everything into one bucket.
  const auto one = hist::build_cuts({5.f, 1.f, 2.f}, 1);
  EXPECT_EQ(one.bin_low.size(), 1u);
}

TEST(HistTrainer, SingleBinTrainingStillLearnsFromMissingness) {
  // n_bins = 1: present-vs-present splits are impossible, but on sparse data
  // the present-vs-missing boundary still carries signal, and training must
  // run to completion without degenerate splits.
  SyntheticSpec s;
  s.n_instances = 600;
  s.n_attributes = 8;
  s.density = 0.5;
  s.seed = 28;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 3;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = HistGbdtTrainer(dev, p, 1).train(ds);
  ASSERT_EQ(r.trees.size(), 3u);
  for (const auto& t : r.trees) {
    for (const auto& n : t.nodes()) {
      if (n.is_leaf()) continue;
      EXPECT_GT(n.n_instances, 0);
    }
  }
}

TEST(HistTrainer, AllEqualColumnsNeverSplit) {
  // Every attribute is constant: no split has positive gain, so each tree is
  // a single root leaf (an all-equal column must not fabricate boundaries).
  data::Dataset ds(2);
  for (int i = 0; i < 50; ++i) {
    const data::Entry row[] = {{0, 7.0f}, {1, -2.0f}};
    ds.add_instance(row, static_cast<float>(i % 2));
  }
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 2;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = HistGbdtTrainer(dev, p, 8).train(ds);
  for (const auto& t : r.trees) {
    EXPECT_EQ(t.n_leaves(), 1);
  }
}

TEST(HistTrainer, DeterministicAcrossRuns) {
  const auto ds = make_data(26, 800, 8);
  const auto p = small_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto a = HistGbdtTrainer(dev1, p, 32).train(ds);
  const auto b = HistGbdtTrainer(dev2, p, 32).train(ds);
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(a.trees[t], b.trees[t], 0.0)) << t;
  }
  EXPECT_EQ(a.train_scores, b.train_scores);
}

TEST(HistTrainer, DepthAndLeafBoundsHold) {
  const auto ds = make_data(27);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 5;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = HistGbdtTrainer(dev, p, 32).train(ds);
  for (const auto& t : r.trees) {
    EXPECT_LE(t.depth(), 3);
    EXPECT_LE(t.n_leaves(), 8);
    EXPECT_EQ(t.node(0).n_instances, ds.n_instances());
  }
}

}  // namespace
}  // namespace gbdt::baseline
