// Tests for the histogram-based (approximate) trainer: learning quality
// relative to the exact trainer, bin-grid split semantics, feasibility
// limits, determinism.
#include <gtest/gtest.h>

#include <set>

#include "baselines/hist_trainer.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt::baseline {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

data::Dataset make_data(unsigned seed, std::int64_t n = 2000,
                        std::int64_t d = 16) {
  SyntheticSpec s;
  s.n_instances = n;
  s.n_attributes = d;
  s.density = 0.8;
  s.label_noise = 0.1;
  s.seed = seed;
  return generate(s);
}

GBDTParam small_param() {
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 8;
  return p;
}

TEST(HistTrainer, LearnsCloseToExact) {
  const auto ds = make_data(21);
  const auto p = small_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto exact = GpuGbdtTrainer(dev1, p).train(ds);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto hist = HistGbdtTrainer(dev2, p, 64).train(ds);

  const double exact_rmse = rmse(exact.train_scores, ds.labels());
  const double hist_rmse = rmse(hist.train_scores, ds.labels());
  // Approximate splits cannot beat exact enumeration by much, and with 64
  // quantile bins they should be close.
  EXPECT_GT(hist_rmse, exact_rmse - 1e-9);
  EXPECT_LT(hist_rmse, exact_rmse * 1.35 + 0.05);
}

TEST(HistTrainer, MoreBinsApproachExactQuality) {
  const auto ds = make_data(22);
  const auto p = small_param();
  double prev = 1e9;
  for (int bins : {4, 16, 256}) {
    Device dev(DeviceConfig::titan_x_pascal());
    const auto r = HistGbdtTrainer(dev, p, bins).train(ds);
    const double e = rmse(r.train_scores, ds.labels());
    EXPECT_LT(e, prev * 1.02) << bins;  // near-monotone improvement
    prev = e;
  }
}

TEST(HistTrainer, SplitValuesLieOnTheBinGrid) {
  // With very few bins, every split threshold must be one of <= 8 distinct
  // cut values per attribute.
  const auto ds = make_data(23, 1500, 6);
  GBDTParam p = small_param();
  p.n_trees = 4;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = HistGbdtTrainer(dev, p, 8).train(ds);
  std::map<std::int32_t, std::set<float>> per_attr;
  for (const auto& t : r.trees) {
    for (const auto& n : t.nodes()) {
      if (!n.is_leaf()) per_attr[n.attr].insert(n.split_value);
    }
  }
  for (const auto& [attr, values] : per_attr) {
    EXPECT_LE(values.size(), 8u) << "attr " << attr;
  }
}

TEST(HistTrainer, FasterThanExactPerModeledSecond) {
  // The histogram method skips sorted lists and partitioning; on dense
  // medium-dimensional data its modeled time per tree is lower.
  SyntheticSpec s;
  s.n_instances = 20000;
  s.n_attributes = 24;
  s.density = 1.0;
  s.seed = 24;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 6;
  p.n_trees = 5;
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto exact = GpuGbdtTrainer(dev1, p).train(ds);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto hist = HistGbdtTrainer(dev2, p, 64).train(ds);
  EXPECT_LT(hist.modeled_seconds, exact.modeled.total());
}

TEST(HistTrainer, RejectsInfeasibleHighDimensionalHistograms) {
  SyntheticSpec s;
  s.n_instances = 200;
  s.n_attributes = 50000;
  s.density = 0.001;
  s.seed = 25;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 12;  // 2^11 nodes x 50k attrs x 256 bins blows the device
  p.n_trees = 1;
  Device dev(DeviceConfig::titan_x_pascal());
  HistGbdtTrainer trainer(dev, p, 256);
  EXPECT_THROW((void)trainer.train(ds), std::invalid_argument);
}

TEST(HistTrainer, RejectsBadConfig) {
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  EXPECT_THROW(HistGbdtTrainer(dev, p, 1), std::invalid_argument);
  EXPECT_THROW(HistGbdtTrainer(dev, p, 1 << 20), std::invalid_argument);
  HistGbdtTrainer ok(dev, p, 64);
  data::Dataset empty(3);
  EXPECT_THROW((void)ok.train(empty), std::invalid_argument);
}

TEST(HistTrainer, DeterministicAcrossRuns) {
  const auto ds = make_data(26, 800, 8);
  const auto p = small_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto a = HistGbdtTrainer(dev1, p, 32).train(ds);
  const auto b = HistGbdtTrainer(dev2, p, 32).train(ds);
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(a.trees[t], b.trees[t], 0.0)) << t;
  }
  EXPECT_EQ(a.train_scores, b.train_scores);
}

TEST(HistTrainer, DepthAndLeafBoundsHold) {
  const auto ds = make_data(27);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 5;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = HistGbdtTrainer(dev, p, 32).train(ds);
  for (const auto& t : r.trees) {
    EXPECT_LE(t.depth(), 3);
    EXPECT_LE(t.n_leaves(), 8);
    EXPECT_EQ(t.node(0).n_instances, ds.n_instances());
  }
}

}  // namespace
}  // namespace gbdt::baseline
