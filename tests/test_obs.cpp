// Tests for the observability subsystem (src/obs/): trace-span aggregation
// over real simulated-device work, the lock-free metrics registry under
// concurrent kernel-body writers, the JSON document layer, the schema of
// emitted run reports, and the gbdt_bench --compare regression gate.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace gbdt;
using obs::Json;

void burn_kernel(device::Device& dev, const char* label, std::int64_t n) {
  dev.launch(label, device::grid_for(n, 128), 128, [&](device::BlockCtx& b) {
    b.for_each_thread([&](std::int64_t) {});
    b.mem_coalesced(static_cast<std::uint64_t>(n));
  });
}

// ---- trace spans ----------------------------------------------------------

TEST(ObsTrace, AttributesKernelsToInnermostSpanAndAggregates) {
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  obs::ObsSession session;
  session.activate();
  const double before = dev.elapsed_seconds();
  {
    obs::ScopedSpan outer("outer");
    burn_kernel(dev, "outer_work", 1 << 14);
    {
      obs::ScopedSpan inner("inner");
      burn_kernel(dev, "inner_work", 1 << 15);
    }
    {
      obs::ScopedSpan inner("inner");  // same name: merges with the sibling
      burn_kernel(dev, "inner_work", 1 << 15);
    }
  }
  const double modeled = dev.elapsed_seconds() - before;
  session.deactivate();

  const obs::Span* outer = session.root().child("outer");
  ASSERT_NE(outer, nullptr);
  const obs::Span* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->children().size(), 1u);  // the two "inner" opens merged
  EXPECT_EQ(outer->stats().invocations, 1u);
  EXPECT_EQ(inner->stats().invocations, 2u);
  EXPECT_EQ(outer->stats().launches, 1u);
  EXPECT_EQ(inner->stats().launches, 2u);

  // Self seconds exclude children; totals include them; everything modeled
  // inside the spans accounts for the device's elapsed-time delta.
  EXPECT_GT(outer->stats().modeled_self_seconds(), 0.0);
  EXPECT_GT(inner->stats().modeled_self_seconds(), 0.0);
  EXPECT_NEAR(outer->modeled_total_seconds(),
              outer->stats().modeled_self_seconds() +
                  inner->stats().modeled_self_seconds(),
              1e-12);
  EXPECT_NEAR(outer->modeled_total_seconds(), modeled, 1e-12);

  // Per-kernel-label aggregation inside the span.
  ASSERT_EQ(inner->stats().kernels.size(), 1u);
  EXPECT_EQ(inner->stats().kernels[0].first, "inner_work");
  EXPECT_EQ(inner->stats().kernels[0].second.launches, 2u);
  EXPECT_GT(inner->stats().kernels[0].second.stats.thread_work, 0u);
}

TEST(ObsTrace, RecordsTransfersAndPeakDeviceMemory) {
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  obs::ObsSession session;
  session.activate();
  std::size_t bytes = 0;
  {
    obs::ScopedSpan span("ship");
    const std::vector<float> host(1 << 16, 1.0f);
    auto buf = dev.to_device<float>(host);
    bytes = buf.bytes();
  }
  session.deactivate();
  const obs::Span* ship = session.root().child("ship");
  ASSERT_NE(ship, nullptr);
  EXPECT_GE(ship->stats().transfer_bytes, bytes);
  EXPECT_GT(ship->stats().transfer_seconds, 0.0);
  EXPECT_GE(session.root().peak_device_bytes_total(), bytes);
}

TEST(ObsTrace, InactiveSessionRecordsNothing) {
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  obs::ObsSession session;  // never activated
  {
    obs::ScopedSpan span("ghost");
    burn_kernel(dev, "ghost_work", 1 << 12);
  }
  EXPECT_TRUE(session.root().children().empty());
  EXPECT_FALSE(obs::tracing_active());
}

TEST(ObsTrace, SecondActivationThrows) {
  obs::ObsSession a;
  obs::ObsSession b;
  a.activate();
  EXPECT_THROW(b.activate(), std::logic_error);
  a.deactivate();
  b.activate();  // fine once the first released the slot
  b.deactivate();
}

// ---- metrics registry -----------------------------------------------------

TEST(ObsMetrics, CountersSurviveConcurrentKernelWriters) {
  // Kernel bodies run on ThreadPool::run_chunks workers; every block
  // increments the same counter.  The sharded relaxed-atomic write path must
  // not lose updates.
  auto& reg = obs::Registry::global();
  obs::Counter& hits = reg.counter("test_obs_block_hits_total");
  obs::Gauge& weight = reg.gauge("test_obs_block_weight");
  obs::Histogram& sizes = reg.histogram("test_obs_block_sizes");
  const std::uint64_t before_hits = hits.value();
  const double before_weight = weight.value();
  const std::uint64_t before_count = sizes.count();

  device::Device dev(device::DeviceConfig::titan_x_pascal());
  constexpr std::int64_t kGrid = 512;
  for (int round = 0; round < 4; ++round) {
    dev.launch("test_metric_writers", kGrid, 64, [&](device::BlockCtx& b) {
      hits.inc();
      weight.add(0.5);
      sizes.observe(static_cast<double>(b.block_idx()));
      b.work(1);
    });
  }
  EXPECT_EQ(hits.value() - before_hits, 4u * kGrid);
  EXPECT_NEAR(weight.value() - before_weight, 4.0 * kGrid * 0.5, 1e-9);
  EXPECT_EQ(sizes.count() - before_count, 4u * kGrid);

  // Same name returns the same instance; labels distinguish.
  EXPECT_EQ(&reg.counter("test_obs_block_hits_total"), &hits);
  EXPECT_NE(&reg.counter("test_obs_block_hits_total", {{"k", "v"}}), &hits);
}

TEST(ObsMetrics, RegistryReportsJson) {
  auto& reg = obs::Registry::global();
  reg.counter("test_obs_report_total").inc(7);
  const Json doc = reg.to_json();
  const Json* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* c = counters->find("test_obs_report_total");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number_or(0.0), 7.0);
}

// ---- JSON layer -----------------------------------------------------------

TEST(ObsJson, DumpParseRoundtrip) {
  Json doc = Json::object();
  doc["string"] = "line\nbreak \"quoted\" \\slash";
  doc["int"] = 42;
  doc["neg"] = -3.5;
  doc["flag"] = true;
  doc["nil"] = Json();
  auto arr = Json::array();
  arr.push_back(1.0);
  arr.push_back("two");
  auto nested = Json::object();
  nested["deep"] = 1e-9;
  arr.push_back(std::move(nested));
  doc["arr"] = std::move(arr);

  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.find("string")->str(), "line\nbreak \"quoted\" \\slash");
  EXPECT_EQ(back.find("int")->number_or(0), 42.0);
  EXPECT_EQ(back.find("neg")->number_or(0), -3.5);
  EXPECT_TRUE(back.find("flag")->bool_or(false));
  EXPECT_TRUE(back.find("nil")->is_null());
  EXPECT_EQ(back.find("arr")->size(), 3u);
  EXPECT_EQ(back.find("arr")->items()[1].str(), "two");
  EXPECT_NEAR(back.find("arr")->items()[2].find("deep")->number_or(0), 1e-9,
              1e-18);
  // Insertion order survives the roundtrip (greppable, diffable reports).
  EXPECT_EQ(back.members().front().first, "string");
}

// ---- run report schema ----------------------------------------------------

TEST(ObsReport, WritesSchemaVersionedRunReport) {
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  obs::ObsSession session;
  session.activate();
  {
    obs::ScopedSpan span("phase_a");
    burn_kernel(dev, "work_a", 1 << 13);
  }
  session.deactivate();

  const std::string path = "/tmp/test_obs_run_report.json";
  ASSERT_TRUE(session.write_report(path));
  std::string err;
  const Json doc = obs::read_json_file(path, &err);
  ASSERT_FALSE(doc.is_null()) << err;
  EXPECT_EQ(doc.find("schema")->str(), "gbdt-obs-run-v1");
  const Json* trace = doc.find("trace");
  ASSERT_NE(trace, nullptr);
  const Json* children = trace->find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->size(), 1u);
  const Json& phase = children->items()[0];
  EXPECT_EQ(phase.find("name")->str(), "phase_a");
  EXPECT_GT(phase.find("kernel_seconds")->number_or(0.0), 0.0);
  EXPECT_GE(phase.find("invocations")->number_or(0.0), 1.0);
  ASSERT_NE(doc.find("metrics"), nullptr);
  std::remove(path.c_str());
}

// ---- gbdt_bench --compare gate --------------------------------------------

#ifdef GBDT_BENCH_PATH

int run_tool(const std::string& args) {
  const std::string cmd =
      std::string(GBDT_BENCH_PATH) + " " + args + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return rc == -1 ? -1 : (WIFEXITED(rc) ? WEXITSTATUS(rc) : -1);
}

void write_suite(const std::string& path, double modeled) {
  Json c = Json::object();
  c["name"] = "ds1";
  auto metrics = Json::object();
  metrics["modeled_seconds"] = modeled;
  c["metrics"] = std::move(metrics);
  auto cases = Json::array();
  cases.push_back(std::move(c));
  auto bench = Json::object();
  bench["schema"] = "gbdt-bench-v1";
  bench["cases"] = std::move(cases);
  Json doc = Json::object();
  doc["schema"] = "gbdt-bench-suite-v1";
  doc["benches"] = Json::object();
  doc["benches"]["t2"] = std::move(bench);
  ASSERT_TRUE(obs::write_json_file(path, doc));
}

TEST(ObsBenchCompare, ExitsNonzeroOnInjectedRegression) {
  const std::string now = "/tmp/test_obs_suite_now.json";
  const std::string old_same = "/tmp/test_obs_suite_old_same.json";
  const std::string old_fast = "/tmp/test_obs_suite_old_fast.json";
  write_suite(now, 1.0);
  write_suite(old_same, 1.0);
  write_suite(old_fast, 0.5);  // the "new" run is 2x slower: a regression

  EXPECT_EQ(run_tool("--compare-only --json=" + now + " --compare=" + now), 0);
  EXPECT_EQ(
      run_tool("--compare-only --json=" + now + " --compare=" + old_same), 0);
  EXPECT_EQ(
      run_tool("--compare-only --json=" + now + " --compare=" + old_fast), 1);
  // A generous threshold lets the same pair pass.
  EXPECT_EQ(run_tool("--compare-only --threshold=150 --json=" + now +
                     " --compare=" + old_fast),
            0);
  // Unreadable inputs are usage errors, not regressions.
  EXPECT_EQ(run_tool("--compare-only --json=/nonexistent.json --compare=" +
                     old_fast),
            2);
  std::remove(now.c_str());
  std::remove(old_same.c_str());
  std::remove(old_fast.c_str());
}

#endif  // GBDT_BENCH_PATH

// ---- workspace-arena allocation metric ------------------------------------

// gbdt_device_alloc_calls_total counts DeviceAllocator::acquire calls.  With
// the workspace arena pooling per-level scratch, a full training run costs
// the dataset/base buffers plus one acquire per (type, size class) high-water
// mark — ~O(1) per level, far below the one-acquire-per-scratch-buffer-
// per-level (~20 x levels) the trainers paid before the arena.
TEST(ObsMetrics, ArenaHoldsDeviceAllocCallsNearConstantPerLevel) {
  data::SyntheticSpec spec;
  spec.n_instances = 400;
  spec.n_attributes = 9;
  spec.density = 0.7;
  spec.distinct_values = 5;
  spec.seed = 18;
  const auto ds = data::generate(spec);

  auto& alloc_calls =
      obs::Registry::global().counter("gbdt_device_alloc_calls_total");

  GBDTParam p;
  p.depth = 5;
  p.n_trees = 2;
  const std::uint64_t before = alloc_calls.value();
  {
    device::Device dev(device::DeviceConfig::titan_x_pascal());
    (void)GpuGbdtTrainer(dev, p).train(ds);
  }
  const std::uint64_t run_calls = alloc_calls.value() - before;
  const auto levels =
      static_cast<std::uint64_t>(p.depth) * static_cast<std::uint64_t>(p.n_trees);
  EXPECT_LT(run_calls, 8 * levels)
      << "device allocations per level regressed; arena pooling broken?";
}

}  // namespace
