// Tests for the multi-GPU trainer: equivalence with single-device training,
// communication accounting, device scaling behaviour, degenerate cases.
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "multigpu/multi_trainer.h"

namespace gbdt::multigpu {
namespace {

using data::SyntheticSpec;
using device::DeviceConfig;

data::Dataset make_data(unsigned seed, std::int64_t n = 1000,
                        std::int64_t d = 16, double density = 0.7) {
  SyntheticSpec s;
  s.n_instances = n;
  s.n_attributes = d;
  s.density = density;
  s.seed = seed;
  return generate(s);
}

GBDTParam small_param() {
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 4;
  return p;
}

TrainReport single_device(const data::Dataset& ds, GBDTParam p) {
  p.use_rle = false;  // the multi-GPU path trains the sparse layout
  device::Device dev(DeviceConfig::titan_x_pascal());
  return GpuGbdtTrainer(dev, p).train(ds);
}

class MultiGpuK : public ::testing::TestWithParam<int> {};

TEST_P(MultiGpuK, MatchesSingleDeviceForest) {
  const int K = GetParam();
  const auto ds = make_data(11);
  const auto p = small_param();
  const auto single = single_device(ds, p);
  MultiGpuTrainer multi(DeviceConfig::titan_x_pascal(), K, p);
  const auto sharded = multi.train(ds);

  ASSERT_EQ(sharded.trees.size(), single.trees.size());
  // Shards compute prefix sums over differently-blocked layouts, so exact
  // gain ties can break differently; structural equality holds everywhere
  // in practice for continuous data, with the fit as backstop.
  int identical = 0;
  for (std::size_t t = 0; t < single.trees.size(); ++t) {
    identical += Tree::same_structure(single.trees[t], sharded.trees[t], 1e-6);
  }
  EXPECT_GE(identical, static_cast<int>(single.trees.size()) - 1)
      << "K=" << K;
  EXPECT_NEAR(rmse(single.train_scores, ds.labels()),
              rmse(sharded.train_scores, ds.labels()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Devices, MultiGpuK, ::testing::Values(1, 2, 3, 4, 8));

TEST(MultiGpu, SingleDeviceShardHasNoPeerTraffic) {
  const auto ds = make_data(12);
  MultiGpuTrainer multi(DeviceConfig::titan_x_pascal(), 1, small_param());
  const auto r = multi.train(ds);
  // K = 1 still pays the root-stat "broadcast" of zero peers = nothing.
  EXPECT_EQ(r.comm_bytes, 0u);
  EXPECT_EQ(r.comm_seconds, 0.0);
}

TEST(MultiGpu, CommunicationGrowsWithDevices) {
  const auto ds = make_data(13);
  std::uint64_t prev_bytes = 0;
  for (int k : {2, 4, 8}) {
    MultiGpuTrainer multi(DeviceConfig::titan_x_pascal(), k, small_param());
    const auto r = multi.train(ds);
    EXPECT_GT(r.comm_bytes, prev_bytes) << k;
    EXPECT_GT(r.comm_seconds, 0.0);
    prev_bytes = r.comm_bytes;
  }
}

TEST(MultiGpu, ShardsShareComputeWork) {
  // High-dimensional data: the per-shard busy time must drop as devices are
  // added (the find phase is attribute-parallel; per-instance work and
  // kernel-launch overheads replicate, so the drop is sublinear).
  const auto ds = make_data(14, 4000, 128, 0.5);
  GBDTParam p = small_param();
  MultiGpuTrainer one(DeviceConfig::titan_x_pascal(), 1, p);
  const auto r1 = one.train(ds);
  MultiGpuTrainer four(DeviceConfig::titan_x_pascal(), 4, p);
  const auto r4 = four.train(ds);
  ASSERT_EQ(r4.device_seconds.size(), 4u);
  const double max_shard =
      *std::max_element(r4.device_seconds.begin(), r4.device_seconds.end());
  EXPECT_LT(max_shard, r1.device_seconds[0] * 0.75);
  // Work is reasonably balanced across round-robin shards.
  const double min_shard =
      *std::min_element(r4.device_seconds.begin(), r4.device_seconds.end());
  EXPECT_GT(min_shard, max_shard * 0.3);
}

TEST(MultiGpu, NvlinkBeatsPcieOnCommunication) {
  const auto ds = make_data(15, 3000, 24);
  GBDTParam p = small_param();
  MultiGpuTrainer pcie(DeviceConfig::titan_x_pascal(), 4, p,
                       Interconnect::pcie3());
  MultiGpuTrainer nvlink(DeviceConfig::titan_x_pascal(), 4, p,
                         Interconnect::nvlink());
  const auto a = pcie.train(ds);
  const auto b = nvlink.train(ds);
  EXPECT_GT(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.comm_bytes, b.comm_bytes);  // same protocol, faster wires
}

TEST(MultiGpu, RejectsDegenerateConfigurations) {
  EXPECT_THROW(
      MultiGpuTrainer(DeviceConfig::titan_x_pascal(), 0, small_param()),
      std::invalid_argument);
  const auto ds = make_data(16, 100, 4);
  MultiGpuTrainer too_many(DeviceConfig::titan_x_pascal(), 8, small_param());
  EXPECT_THROW((void)too_many.train(ds), std::invalid_argument);
  data::Dataset empty(4);
  MultiGpuTrainer two(DeviceConfig::titan_x_pascal(), 2, small_param());
  EXPECT_THROW((void)two.train(empty), std::invalid_argument);
}

TEST(MultiGpu, LargerDatasetFitsAcrossDevicesThatOneCannotHold) {
  // Memory aggregation: each shard holds ~1/K of the attribute lists, so a
  // dataset whose lists overflow one small device trains on four.
  SyntheticSpec s;
  s.n_instances = 30000;
  s.n_attributes = 32;
  s.density = 1.0;
  s.seed = 17;
  const auto ds = generate(s);
  auto cfg = DeviceConfig::titan_x_pascal();
  cfg.global_mem_bytes = 26u << 20;  // 26 MiB toy GPUs

  GBDTParam p;
  p.depth = 3;
  p.n_trees = 1;
  p.use_rle = false;
  device::Device dev(cfg);
  EXPECT_THROW((void)GpuGbdtTrainer(dev, p).train(ds),
               device::DeviceOutOfMemory);

  MultiGpuTrainer multi(cfg, 4, p);
  const auto r = multi.train(ds);  // must not throw
  EXPECT_EQ(r.trees.size(), 1u);
}

}  // namespace
}  // namespace gbdt::multigpu
