// Tests for the extended primitive set: reduce_by_key, count_runs,
// adjacent_difference, segmented sort — plus determinism of the partition
// and scan primitives across host worker counts.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "device/device_context.h"
#include "primitives/partition.h"
#include "primitives/reduce_by_key.h"
#include "primitives/scan.h"
#include "primitives/sort.h"
#include "primitives/transform.h"

namespace gbdt::prim {
namespace {

using device::Device;
using device::DeviceConfig;

Device make_device() { return Device(DeviceConfig::titan_x_pascal()); }

TEST(ReduceByKey, CollapsesConsecutiveRuns) {
  auto dev = make_device();
  std::vector<std::int32_t> keys{1, 1, 2, 2, 2, 1, 3};
  std::vector<double> vals{1, 2, 3, 4, 5, 6, 7};
  auto d_k = dev.to_device<std::int32_t>(keys);
  auto d_v = dev.to_device<double>(vals);
  auto ok = dev.alloc<std::int32_t>(keys.size());
  auto os = dev.alloc<double>(vals.size());
  const auto runs = reduce_by_key(dev, d_k, d_v, ok, os);
  ASSERT_EQ(runs, 4);
  const std::vector<std::int32_t> want_k{1, 2, 1, 3};
  const std::vector<double> want_s{3, 12, 6, 7};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ok[i], want_k[i]) << i;
    EXPECT_DOUBLE_EQ(os[i], want_s[i]) << i;
  }
}

TEST(ReduceByKey, MatchesSerialOnRandomInput) {
  auto dev = make_device();
  std::mt19937 rng(31);
  const std::size_t n = 50000;
  std::vector<std::int32_t> keys(n);
  std::vector<double> vals(n);
  std::int32_t key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng() % 5 == 0) ++key;
    keys[i] = key;
    vals[i] = static_cast<double>(rng() % 100) / 7.0;
  }
  auto d_k = dev.to_device<std::int32_t>(keys);
  auto d_v = dev.to_device<double>(vals);
  auto ok = dev.alloc<std::int32_t>(n);
  auto os = dev.alloc<double>(n);
  const auto runs = reduce_by_key(dev, d_k, d_v, ok, os);

  std::vector<std::pair<std::int32_t, double>> want;
  for (std::size_t i = 0; i < n; ++i) {
    if (want.empty() || want.back().first != keys[i]) {
      want.push_back({keys[i], 0.0});
    }
    want.back().second += vals[i];
  }
  ASSERT_EQ(runs, static_cast<std::int64_t>(want.size()));
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(ok[i], want[i].first) << i;
    ASSERT_NEAR(os[i], want[i].second, 1e-9) << i;
  }
}

TEST(ReduceByKey, SingleRunAndEmpty) {
  auto dev = make_device();
  auto empty_k = dev.alloc<std::int32_t>(0);
  auto empty_v = dev.alloc<double>(0);
  auto ok = dev.alloc<std::int32_t>(1);
  auto os = dev.alloc<double>(1);
  EXPECT_EQ(reduce_by_key(dev, empty_k, empty_v, ok, os), 0);

  std::vector<std::int32_t> keys(777, 9);
  std::vector<double> vals(777, 0.5);
  auto d_k = dev.to_device<std::int32_t>(keys);
  auto d_v = dev.to_device<double>(vals);
  auto ok2 = dev.alloc<std::int32_t>(777);
  auto os2 = dev.alloc<double>(777);
  EXPECT_EQ(reduce_by_key(dev, d_k, d_v, ok2, os2), 1);
  EXPECT_NEAR(os2[0], 777 * 0.5, 1e-9);
}

TEST(CountRuns, MatchesReference) {
  auto dev = make_device();
  std::vector<std::int32_t> keys{5, 5, 5, 1, 1, 9, 5};
  auto d_k = dev.to_device<std::int32_t>(keys);
  EXPECT_EQ(count_runs(dev, d_k), 4);
  auto empty = dev.alloc<std::int32_t>(0);
  EXPECT_EQ(count_runs(dev, empty), 0);
}

TEST(AdjacentDifference, MatchesReference) {
  auto dev = make_device();
  std::vector<std::int64_t> in{3, 7, 7, 2, 10};
  auto d_in = dev.to_device<std::int64_t>(in);
  auto out = dev.alloc<std::int64_t>(in.size());
  adjacent_difference(dev, d_in, out);
  const std::vector<std::int64_t> want{3, 4, 0, -5, 8};
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(out[i], want[i]);
}

class SegSortCase : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SegSortCase, SortsWithinSegmentsOnly) {
  const auto [seg_len, descending] = GetParam();
  auto dev = make_device();
  std::mt19937 rng(47);
  const std::int64_t n = 20000;
  std::vector<float> vals(n);
  std::vector<std::uint32_t> payload(n);
  for (std::int64_t i = 0; i < n; ++i) {
    vals[static_cast<std::size_t>(i)] =
        static_cast<float>(static_cast<int>(rng() % 2001) - 1000) / 10.f;
    payload[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::int64_t> offs{0};
  while (offs.back() < n) {
    offs.push_back(std::min<std::int64_t>(
        n, offs.back() + 1 + static_cast<std::int64_t>(rng() % (2 * seg_len))));
  }

  auto d_v = dev.to_device<float>(vals);
  auto d_p = dev.to_device<std::uint32_t>(payload);
  auto d_o = dev.to_device<std::int64_t>(offs);
  segmented_sort_pairs(dev, d_v, d_p, d_o, descending);

  for (std::size_t s = 0; s + 1 < offs.size(); ++s) {
    // Sorted within the segment in the requested direction, stable ties.
    for (std::int64_t e = offs[s] + 1; e < offs[s + 1]; ++e) {
      const auto u = static_cast<std::size_t>(e);
      if (descending) {
        ASSERT_GE(d_v[u - 1], d_v[u]) << e;
      } else {
        ASSERT_LE(d_v[u - 1], d_v[u]) << e;
      }
      if (d_v[u - 1] == d_v[u]) {
        ASSERT_LT(d_p[u - 1], d_p[u]) << e;
      }
    }
    // Same multiset of payloads per segment (nothing crossed a boundary).
    std::multiset<std::uint32_t> got, want;
    for (std::int64_t e = offs[s]; e < offs[s + 1]; ++e) {
      got.insert(d_p[static_cast<std::size_t>(e)]);
      want.insert(payload[static_cast<std::size_t>(e)]);
    }
    ASSERT_EQ(got, want) << "segment " << s;
  }
  // Values still pair with their original payloads.
  for (std::int64_t e = 0; e < n; ++e) {
    const auto u = static_cast<std::size_t>(e);
    ASSERT_EQ(d_v[u], vals[static_cast<std::size_t>(d_p[u])]);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, SegSortCase,
                         ::testing::Combine(::testing::Values(5, 300, 20000),
                                            ::testing::Bool()));

TEST(WorkerDeterminism, ScanAndPartitionMatchAcrossWorkerCounts) {
  std::mt19937 rng(53);
  const std::int64_t n = 65537;
  std::vector<double> vals(static_cast<std::size_t>(n));
  std::vector<std::int32_t> parts(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    vals[static_cast<std::size_t>(i)] = static_cast<double>(rng() % 1000) / 3;
    parts[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(rng() % 17);
  }

  std::vector<double> scan1, scan4;
  std::vector<std::int64_t> scat1, scat4;
  for (unsigned workers : {1u, 4u}) {
    Device dev(DeviceConfig::titan_x_pascal(), workers);
    auto d_v = dev.to_device<double>(vals);
    auto out = dev.alloc<double>(static_cast<std::size_t>(n));
    inclusive_scan(dev, d_v, out);
    auto d_p = dev.to_device<std::int32_t>(parts);
    auto scatter = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
    auto offs = dev.alloc<std::int64_t>(18);
    histogram_partition(dev, d_p.span(), 17, scatter.span(), offs.span(),
                        plan_partition(n, 17, 1 << 20, true));
    auto& scan_out = workers == 1 ? scan1 : scan4;
    auto& scat_out = workers == 1 ? scat1 : scat4;
    scan_out.assign(out.span().begin(), out.span().end());
    scat_out.assign(scatter.span().begin(), scatter.span().end());
  }
  EXPECT_EQ(scan1, scan4);  // bitwise: association fixed by the tiles
  EXPECT_EQ(scat1, scat4);
}

}  // namespace
}  // namespace gbdt::prim
