// Property-style parameterized sweeps across the trainer configuration
// space: for every combination of depth, density, value-cardinality and
// loss, the GPU trainer must (a) match the CPU oracle exactly, (b) respect
// structural invariants (leaf counts, depth bounds, instance conservation),
// and (c) behave monotonically in the regularization knobs.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/xgb_exact.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "device/device_memory.h"

namespace gbdt {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

struct MatrixCase {
  int depth;
  double density;
  int distinct;
  LossKind loss;
  unsigned seed;
};

void PrintTo(const MatrixCase& c, std::ostream* os) {
  *os << "depth" << c.depth << "_dens" << c.density << "_dist" << c.distinct
      << "_" << (c.loss == LossKind::kSquaredError ? "l2" : "logistic")
      << "_s" << c.seed;
}

class TrainerMatrix : public ::testing::TestWithParam<MatrixCase> {
 protected:
  data::Dataset make_dataset() const {
    const auto& c = GetParam();
    SyntheticSpec s;
    s.n_instances = 400;
    s.n_attributes = 10;
    s.density = c.density;
    s.distinct_values = c.distinct;
    s.binary_labels = c.loss == LossKind::kLogistic;
    s.seed = c.seed;
    return generate(s);
  }
  GBDTParam make_param() const {
    const auto& c = GetParam();
    GBDTParam p;
    p.depth = c.depth;
    p.n_trees = 3;
    p.loss = c.loss;
    p.use_rle = false;  // oracle comparison uses the sparse path
    return p;
  }
};

TEST_P(TrainerMatrix, GpuMatchesCpuOracleBitwise) {
  const auto ds = make_dataset();
  const auto param = make_param();
  Device dev(DeviceConfig::titan_x_pascal());
  const auto gpu = GpuGbdtTrainer(dev, param).train(ds);
  const auto cpu = baseline::XgbExactTrainer(param).train(ds);
  ASSERT_EQ(gpu.trees.size(), cpu.trees.size());
  for (std::size_t t = 0; t < gpu.trees.size(); ++t) {
    ASSERT_TRUE(Tree::same_structure(gpu.trees[t], cpu.trees[t], 0.0))
        << "tree " << t;
  }
  ASSERT_EQ(gpu.train_scores.size(), cpu.train_scores.size());
  for (std::size_t i = 0; i < gpu.train_scores.size(); ++i) {
    ASSERT_EQ(gpu.train_scores[i], cpu.train_scores[i]) << i;
  }
}

TEST_P(TrainerMatrix, StructuralInvariantsHold) {
  const auto ds = make_dataset();
  const auto param = make_param();
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = GpuGbdtTrainer(dev, param).train(ds);
  for (const auto& tree : r.trees) {
    EXPECT_LE(tree.depth(), param.depth);
    EXPECT_LE(tree.n_leaves(), 1 << param.depth);
    EXPECT_EQ(tree.node(0).n_instances, ds.n_instances());
    // Instance conservation: children partition the parent exactly.
    for (std::int32_t id = 0; id < tree.n_nodes(); ++id) {
      const auto& n = tree.node(id);
      if (!n.is_leaf()) {
        EXPECT_EQ(n.n_instances,
                  tree.node(n.left).n_instances +
                      tree.node(n.right).n_instances)
            << "node " << id;
        EXPECT_NEAR(n.sum_h,
                    tree.node(n.left).sum_h + tree.node(n.right).sum_h, 1e-6);
        EXPECT_GT(n.gain, param.gamma);
        EXPECT_GE(n.attr, 0);
        EXPECT_LT(n.attr, ds.n_attributes());
      }
    }
  }
}

TEST_P(TrainerMatrix, RlePathAgreesWhenForced) {
  if (GetParam().distinct == 0) GTEST_SKIP() << "continuous data";
  const auto ds = make_dataset();
  auto p_sparse = make_param();
  auto p_rle = make_param();
  p_rle.use_rle = true;
  p_rle.force_rle = true;
  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto sparse = GpuGbdtTrainer(dev1, p_sparse).train(ds);
  const auto rle = GpuGbdtTrainer(dev2, p_rle).train(ds);
  ASSERT_EQ(sparse.trees.size(), rle.trees.size());
  // Low-cardinality data can produce *exact* gain ties between different
  // attributes (two columns inducing the same partition of a small node);
  // the two paths may break such ties differently because element-domain
  // and run-domain prefix sums differ in the last ulp.  Structural equality
  // is required tree by tree, but a tied-split divergence is accepted when
  // the forests are functionally equivalent (same training fit).
  bool all_identical = true;
  for (std::size_t t = 0; t < sparse.trees.size(); ++t) {
    if (!Tree::same_structure(sparse.trees[t], rle.trees[t], 1e-7)) {
      all_identical = false;
      EXPECT_EQ(sparse.trees[t].n_leaves(), rle.trees[t].n_leaves());
    }
  }
  if (!all_identical) {
    EXPECT_NEAR(rmse(sparse.train_scores, ds.labels()),
                rmse(rle.train_scores, ds.labels()), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TrainerMatrix,
    ::testing::ValuesIn([] {
      std::vector<MatrixCase> cases;
      unsigned seed = 100;
      for (int depth : {1, 3, 6}) {
        for (double density : {0.3, 1.0}) {
          for (int distinct : {0, 4}) {
            for (LossKind loss :
                 {LossKind::kSquaredError, LossKind::kLogistic}) {
              cases.push_back({depth, density, distinct, loss, ++seed});
            }
          }
        }
      }
      return cases;
    }()));

// ---- regularization monotonicity -------------------------------------------

TEST(Regularization, LargerLambdaShrinksLeafWeights) {
  SyntheticSpec s;
  s.n_instances = 500;
  s.n_attributes = 8;
  s.seed = 9;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  double prev_max = std::numeric_limits<double>::infinity();
  for (double lambda : {0.0, 1.0, 10.0, 100.0}) {
    GBDTParam p;
    p.depth = 3;
    p.n_trees = 1;
    p.lambda = lambda;
    const auto r = GpuGbdtTrainer(dev, p).train(ds);
    double max_w = 0.0;
    for (const auto& n : r.trees[0].nodes()) {
      if (n.is_leaf()) max_w = std::max(max_w, std::abs(n.weight));
    }
    EXPECT_LT(max_w, prev_max) << lambda;
    prev_max = max_w;
  }
}

TEST(Regularization, LargerGammaNeverGrowsTheTree) {
  SyntheticSpec s;
  s.n_instances = 500;
  s.n_attributes = 8;
  s.seed = 10;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  int prev_leaves = 1 << 30;
  for (double gamma : {0.0, 0.5, 5.0, 500.0}) {
    GBDTParam p;
    p.depth = 5;
    p.n_trees = 1;
    p.gamma = gamma;
    const auto r = GpuGbdtTrainer(dev, p).train(ds);
    EXPECT_LE(r.trees[0].n_leaves(), prev_leaves) << gamma;
    prev_leaves = r.trees[0].n_leaves();
  }
}

TEST(Regularization, SmallerEtaNeedsMoreTreesForSameFit) {
  SyntheticSpec s;
  s.n_instances = 600;
  s.n_attributes = 10;
  s.seed = 11;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  auto rmse_with = [&](double eta, int trees) {
    GBDTParam p;
    p.depth = 4;
    p.n_trees = trees;
    p.eta = eta;
    const auto r = GpuGbdtTrainer(dev, p).train(ds);
    return rmse(r.train_scores, ds.labels());
  };
  // At equal tree count the larger step size fits the training data faster.
  EXPECT_LT(rmse_with(0.8, 5), rmse_with(0.1, 5));
  // More small steps close the gap.
  EXPECT_LT(rmse_with(0.1, 40), rmse_with(0.1, 5));
}

// ---- missing-value handling -------------------------------------------------

TEST(MissingValues, LearnedDefaultDirectionBeatsFixed) {
  // Instances missing attribute 0 share the label of the high-value group,
  // so the learned default direction must send them left (the high side).
  data::Dataset ds(2);
  for (int i = 0; i < 100; ++i) {
    const std::vector<data::Entry> high{{0, 10.f}, {1, static_cast<float>(i % 7)}};
    ds.add_instance(high, 1.f);
    const std::vector<data::Entry> low{{0, -10.f}, {1, static_cast<float>(i % 5)}};
    ds.add_instance(low, -1.f);
    const std::vector<data::Entry> missing{{1, static_cast<float>(i % 3)}};
    ds.add_instance(missing, 1.f);  // behaves like the high group
  }
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 1;
  p.n_trees = 1;
  p.eta = 1.0;
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  const auto& root = r.trees[0].node(0);
  ASSERT_FALSE(root.is_leaf());
  EXPECT_EQ(root.attr, 0);
  EXPECT_TRUE(root.default_left);  // missing joins the +1 group
  // And the missing instances indeed predict positive.
  const std::vector<data::Entry> probe{{1, 0.f}};
  const std::int32_t attrs[] = {1};
  const float vals[] = {0.f};
  EXPECT_GT(r.trees[0].predict(attrs, vals, 1), 0.0);
}

TEST(MissingValues, AllMissingAttributeNeverChosen) {
  // Attribute 1 never appears; splits must come from attribute 0 only.
  data::Dataset ds(2);
  for (int i = 0; i < 50; ++i) {
    const std::vector<data::Entry> row{{0, static_cast<float>(i)}};
    ds.add_instance(row, i < 25 ? -1.f : 1.f);
  }
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 2;
  p.n_trees = 1;
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  for (const auto& n : r.trees[0].nodes()) {
    if (!n.is_leaf()) {
      EXPECT_EQ(n.attr, 0);
    }
  }
}

// ---- device-memory behaviour -------------------------------------------------

TEST(DeviceMemory, TrainerOomsOnTinyDevice) {
  SyntheticSpec s;
  s.n_instances = 5000;
  s.n_attributes = 50;
  s.seed = 12;
  const auto ds = generate(s);
  auto cfg = DeviceConfig::titan_x_pascal();
  cfg.global_mem_bytes = 1 << 16;  // 64 KiB "GPU"
  Device dev(cfg);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 1;
  GpuGbdtTrainer trainer(dev, p);
  EXPECT_THROW((void)trainer.train(ds), device::DeviceOutOfMemory);
}

TEST(DeviceMemory, RleShrinksPeakFootprintOnCompressibleData) {
  SyntheticSpec s;
  s.n_instances = 20000;
  s.n_attributes = 16;
  s.density = 1.0;
  s.distinct_values = 2;  // extremely compressible
  s.seed = 13;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 2;
  p.use_rle = false;
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto sparse = GpuGbdtTrainer(dev1, p).train(ds);
  p.use_rle = true;
  p.force_rle = true;
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto rle = GpuGbdtTrainer(dev2, p).train(ds);
  EXPECT_GT(rle.rle_ratio, 100.0);
  EXPECT_LT(rle.peak_device_bytes, sparse.peak_device_bytes);
}

TEST(DeviceMemory, RleReducesPcieTraffic) {
  // Paper: RLE "helps reduce the PCI-e traffic".  The compressed layout is
  // built on-device here, so the saving shows up as less data copied back
  // and forth per tree and a smaller resident set; assert the compressed
  // run count is a small fraction of the element count.
  SyntheticSpec s;
  s.n_instances = 10000;
  s.n_attributes = 8;
  s.density = 1.0;
  s.distinct_values = 3;
  s.seed = 14;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 2;
  p.n_trees = 1;
  p.force_rle = true;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  EXPECT_TRUE(r.used_rle);
  EXPECT_GT(r.rle_ratio, 1000.0);  // 8 cols x 3 values over 10k instances
}

// ---- prediction robustness ---------------------------------------------------

TEST(Prediction, UnseenAttributesActAsMissing) {
  SyntheticSpec s;
  s.n_instances = 300;
  s.n_attributes = 6;
  s.seed = 15;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 2;
  auto [model, report] = GBDTModel::train(dev, ds, p);
  // An instance with only out-of-training-range attributes routes purely by
  // default directions and must yield a finite score.
  const std::vector<data::Entry> exotic{{100, 1.f}, {200, -3.f}};
  const double score = model.predict_one(exotic);
  EXPECT_TRUE(std::isfinite(score));
  // Empty instance too.
  EXPECT_TRUE(std::isfinite(model.predict_one({})));
}

TEST(Prediction, ConstantLabelsYieldConstantModel) {
  data::Dataset ds(3);
  for (int i = 0; i < 64; ++i) {
    const std::vector<data::Entry> row{{0, static_cast<float>(i % 8)},
                                       {2, static_cast<float>(i % 3)}};
    ds.add_instance(row, 2.5f);
  }
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 20;
  p.eta = 0.5;
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  for (double s : r.train_scores) EXPECT_NEAR(s, 2.5, 1e-3);
  // No split has positive gain on constant labels after the first shrink
  // steps; trees collapse to single leaves quickly.
  EXPECT_EQ(r.trees.back().n_leaves(), 1);
}

TEST(Prediction, SingleInstanceDataset) {
  data::Dataset ds(2);
  const std::vector<data::Entry> row{{0, 1.f}};
  ds.add_instance(row, 7.f);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 5;
  p.eta = 1.0;
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  EXPECT_NEAR(r.train_scores[0], 7.0 * (1 - std::pow(0.5, 5)) / 0.5 * 0.5,
              3.6);  // converging toward the label
  for (const auto& t : r.trees) EXPECT_EQ(t.n_leaves(), 1);
}

}  // namespace
}  // namespace gbdt
