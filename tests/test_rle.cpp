// Tests for the RLE substrate: compression round trips against serial
// references, segment-boundary behaviour, ratio estimation, the paper's
// running example from Figure 4.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "device/device_context.h"
#include "primitives/transform.h"
#include "rle/rle.h"

namespace gbdt::rle {
namespace {

using device::Device;
using device::DeviceConfig;

struct HostRle {
  std::vector<float> values;
  std::vector<std::int64_t> starts;
  std::vector<std::int64_t> seg_offsets;
};

/// Serial reference compressor.
HostRle reference_compress(const std::vector<float>& v,
                           const std::vector<std::int64_t>& offs) {
  HostRle out;
  out.seg_offsets.resize(offs.size());
  for (std::size_t s = 0; s + 1 < offs.size(); ++s) {
    out.seg_offsets[s] = static_cast<std::int64_t>(out.values.size());
    for (std::int64_t e = offs[s]; e < offs[s + 1]; ++e) {
      if (e == offs[s] || v[static_cast<std::size_t>(e)] !=
                              v[static_cast<std::size_t>(e - 1)]) {
        out.values.push_back(v[static_cast<std::size_t>(e)]);
        out.starts.push_back(e);
      }
    }
  }
  out.seg_offsets.back() = static_cast<std::int64_t>(out.values.size());
  out.starts.push_back(offs.back());
  return out;
}

void expect_equal(const DeviceRle& got, const HostRle& want) {
  ASSERT_EQ(got.n_runs, static_cast<std::int64_t>(want.values.size()));
  for (std::size_t r = 0; r < want.values.size(); ++r) {
    ASSERT_EQ(got.values[r], want.values[r]) << "run " << r;
    ASSERT_EQ(got.starts[r], want.starts[r]) << "run " << r;
  }
  ASSERT_EQ(got.starts[static_cast<std::size_t>(got.n_runs)],
            want.starts.back());
  ASSERT_EQ(got.seg_offsets.size(), want.seg_offsets.size());
  for (std::size_t s = 0; s < want.seg_offsets.size(); ++s) {
    ASSERT_EQ(got.seg_offsets[s], want.seg_offsets[s]) << "seg " << s;
  }
}

TEST(Rle, PaperFigure4Example) {
  // "Given a sequence of values 1.2, 1.2, 1.2, 3.4, 3.4, 3.4, 3.4, RLE
  //  represents the sequence using value-and-length pairs (1.2,3), (3.4,4)."
  Device dev(DeviceConfig::titan_x_pascal());
  std::vector<float> v{1.2f, 1.2f, 1.2f, 3.4f, 3.4f, 3.4f, 3.4f};
  std::vector<std::int64_t> offs{0, 7};
  auto d_v = dev.to_device<float>(v);
  auto d_o = dev.to_device<std::int64_t>(offs);
  const auto rle = compress(dev, d_v.span(), d_o.span());
  ASSERT_EQ(rle.n_runs, 2);
  EXPECT_EQ(rle.values[0], 1.2f);
  EXPECT_EQ(rle.run_length(0), 3);
  EXPECT_EQ(rle.values[1], 3.4f);
  EXPECT_EQ(rle.run_length(1), 4);
  EXPECT_DOUBLE_EQ(measured_ratio(rle), 7.0 / 2.0);
}

TEST(Rle, RunsNeverCrossSegmentBoundaries) {
  Device dev(DeviceConfig::titan_x_pascal());
  // Same value 5.0 straddles the boundary between segments 0 and 1 — it must
  // become two runs.
  std::vector<float> v{5.f, 5.f, 5.f, 5.f};
  std::vector<std::int64_t> offs{0, 2, 4};
  auto d_v = dev.to_device<float>(v);
  auto d_o = dev.to_device<std::int64_t>(offs);
  const auto rle = compress(dev, d_v.span(), d_o.span());
  ASSERT_EQ(rle.n_runs, 2);
  EXPECT_EQ(rle.run_length(0), 2);
  EXPECT_EQ(rle.run_length(1), 2);
  EXPECT_EQ(rle.seg_offsets[0], 0);
  EXPECT_EQ(rle.seg_offsets[1], 1);
  EXPECT_EQ(rle.seg_offsets[2], 2);
}

TEST(Rle, EmptySegmentsGetEmptyRunRanges) {
  Device dev(DeviceConfig::titan_x_pascal());
  std::vector<float> v{1.f, 1.f, 2.f};
  std::vector<std::int64_t> offs{0, 0, 2, 2, 3, 3};
  auto d_v = dev.to_device<float>(v);
  auto d_o = dev.to_device<std::int64_t>(offs);
  const auto rle = compress(dev, d_v.span(), d_o.span());
  ASSERT_EQ(rle.n_runs, 2);
  EXPECT_EQ(rle.seg_offsets[0], 0);  // empty
  EXPECT_EQ(rle.seg_offsets[1], 0);
  EXPECT_EQ(rle.seg_offsets[2], 1);  // empty
  EXPECT_EQ(rle.seg_offsets[3], 1);
  EXPECT_EQ(rle.seg_offsets[4], 2);  // empty (trailing)
  EXPECT_EQ(rle.seg_offsets[5], 2);
}

TEST(Rle, EmptyInput) {
  Device dev(DeviceConfig::titan_x_pascal());
  auto d_v = dev.alloc<float>(0);
  std::vector<std::int64_t> offs{0, 0, 0};
  auto d_o = dev.to_device<std::int64_t>(offs);
  const auto rle = compress(dev, d_v.span(), d_o.span());
  EXPECT_EQ(rle.n_runs, 0);
  EXPECT_EQ(rle.seg_offsets[2], 0);
  EXPECT_DOUBLE_EQ(measured_ratio(rle), 1.0);
}

struct RleCase {
  std::int64_t n;
  int distinct;  // values drawn from this many; smaller = longer runs
  int seg_len;   // average segment length
  unsigned seed;
};

class RleRoundTrip : public ::testing::TestWithParam<RleCase> {};

TEST_P(RleRoundTrip, CompressMatchesReferenceAndDecompressRestores) {
  const auto p = GetParam();
  Device dev(DeviceConfig::titan_x_pascal());
  std::mt19937 rng(p.seed);

  std::vector<std::int64_t> offs{0};
  while (offs.back() < p.n) {
    offs.push_back(std::min<std::int64_t>(
        p.n, offs.back() + static_cast<std::int64_t>(rng() % (2 * p.seg_len))));
  }
  if (offs.back() != p.n) offs.push_back(p.n);

  // Sorted-descending values inside each segment (the trainer's invariant).
  std::vector<float> v(static_cast<std::size_t>(p.n));
  for (std::size_t s = 0; s + 1 < offs.size(); ++s) {
    std::vector<float> seg;
    for (std::int64_t e = offs[s]; e < offs[s + 1]; ++e) {
      seg.push_back(static_cast<float>(rng() % static_cast<unsigned>(p.distinct)));
    }
    std::sort(seg.rbegin(), seg.rend());
    std::copy(seg.begin(), seg.end(),
              v.begin() + static_cast<std::ptrdiff_t>(offs[s]));
  }

  auto d_v = dev.to_device<float>(v);
  auto d_o = dev.to_device<std::int64_t>(offs);
  const auto rle = compress(dev, d_v.span(), d_o.span());
  expect_equal(rle, reference_compress(v, offs));

  auto restored = dev.alloc<float>(static_cast<std::size_t>(p.n));
  decompress(dev, rle, restored);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(restored[i], v[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RleRoundTrip,
    ::testing::Values(RleCase{1, 1, 1, 1}, RleCase{1000, 3, 50, 2},
                      RleCase{1000, 1000, 50, 3},  // nearly incompressible
                      RleCase{10000, 2, 500, 4},   // highly compressible
                      RleCase{10000, 16, 7, 5},    // tiny segments
                      RleCase{257, 4, 256, 6}));

TEST(Rle, CompressionReducesMemoryForRepetitiveData) {
  Device dev(DeviceConfig::titan_x_pascal());
  const std::int64_t n = 100000;
  std::vector<float> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<float>(i / 1000);  // runs of 1000
  }
  std::vector<std::int64_t> offs{0, n};
  auto d_v = dev.to_device<float>(v);
  auto d_o = dev.to_device<std::int64_t>(offs);
  const auto rle = compress(dev, d_v.span(), d_o.span());
  EXPECT_EQ(rle.n_runs, 100);
  EXPECT_LT(rle.bytes(), d_v.bytes() / 10);
  EXPECT_DOUBLE_EQ(measured_ratio(rle), 1000.0);
}

TEST(Rle, PaperGateUsesDimensionalityOverCardinality) {
  // news20: 1355191 / 19954 = 67.9  -> compress at R = 10
  EXPECT_TRUE(paper_gate(1355191, 19954, 10.0));
  // susy: 18 / 5000000 ~ 0         -> don't
  EXPECT_FALSE(paper_gate(18, 5000000, 10.0));
  EXPECT_FALSE(paper_gate(100, 0, 10.0));  // degenerate cardinality
}

}  // namespace
}  // namespace gbdt::rle
