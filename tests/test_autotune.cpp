// Tests for the cost-model-guided autotuner: the tuned configuration can
// never predict worse find-split seconds than the paper's fixed C = 1000
// (the acceptance gate), the sweep always evaluates the paper default, the
// chosen knobs land in GBDTParam, and a tuned training run still fits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/autotune.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt::autotune {
namespace {

using device::DeviceConfig;

ProblemShape shape_of(std::int64_t n, std::int64_t d, double density) {
  ProblemShape s;
  s.n_instances = n;
  s.n_attributes = d;
  s.n_entries = static_cast<std::int64_t>(static_cast<double>(n * d) * density);
  return s;
}

// The tuner keeps the paper default unless a candidate predicts a >3% win,
// so tuned <= baseline must hold on every shape, device, and depth.
TEST(Autotune, TunedNeverWorseThanPaperDefault) {
  const ProblemShape shapes[] = {
      shape_of(100, 8, 1.0),           // tiny
      shape_of(10000, 100, 0.3),       // small sparse
      shape_of(500000, 90, 0.2),       // tall (higgs-like)
      shape_of(20000, 1000000, 0.001),  // wide sparse (news20-like)
  };
  const DeviceConfig cfgs[] = {DeviceConfig::titan_x_pascal(),
                               DeviceConfig::tesla_p100(),
                               DeviceConfig::tesla_k20()};
  for (const auto& cfg : cfgs) {
    for (const auto& s : shapes) {
      for (int depth : {3, 6, 10}) {
        GBDTParam p;
        p.depth = depth;
        const auto t = tune(cfg, s, p);
        EXPECT_LE(t.tuned_find_split_seconds,
                  t.baseline_find_split_seconds + 1e-15)
            << "n=" << s.n_instances << " d=" << s.n_attributes
            << " depth=" << depth;
      }
    }
  }
}

TEST(Autotune, SweepEvaluatesPaperDefault) {
  GBDTParam p;
  const auto t =
      tune(DeviceConfig::titan_x_pascal(), shape_of(10000, 50, 0.5), p);
  const bool has_default = std::any_of(
      t.candidates.begin(), t.candidates.end(), [](const SetKeyCandidate& c) {
        return c.use_custom_setkey && c.setkey_c == 1000;
      });
  EXPECT_TRUE(has_default);
  // The formula-off candidate is part of the sweep too.
  const bool has_off = std::any_of(
      t.candidates.begin(), t.candidates.end(),
      [](const SetKeyCandidate& c) { return !c.use_custom_setkey; });
  EXPECT_TRUE(has_off);
  EXPECT_FALSE(t.ooc_candidates.empty());
  // Fusion only removes traffic; the model must confirm it on.
  EXPECT_TRUE(t.fused_find);
  EXPECT_GE(t.fused_saving_seconds, 0.0);
}

TEST(Autotune, ApplyWritesChosenKnobs) {
  TuningReport t;
  t.setkey_c = 250;
  t.use_custom_setkey = true;
  t.use_custom_idxcomp_workload = false;
  GBDTParam p;
  apply(t, p);
  EXPECT_EQ(p.setkey_c, 250);
  EXPECT_TRUE(p.use_custom_setkey);
  EXPECT_FALSE(p.use_custom_idxcomp_workload);
}

// End-to-end: --autotune on the exact trainer produces a report with the
// tuning evidence attached and a model that still fits the data.
TEST(Autotune, TrainerRunsTunedAndFits) {
  data::SyntheticSpec spec;
  spec.n_instances = 1500;
  spec.n_attributes = 24;
  spec.density = 0.6;
  spec.seed = 29;
  const auto ds = data::generate(spec);

  GBDTParam p;
  p.depth = 4;
  p.n_trees = 4;
  p.use_rle = false;

  device::Device plain_dev(DeviceConfig::titan_x_pascal());
  const auto plain = GpuGbdtTrainer(plain_dev, p).train(ds);
  EXPECT_FALSE(plain.tuned);

  p.autotune = true;
  device::Device tuned_dev(DeviceConfig::titan_x_pascal());
  const auto tuned = GpuGbdtTrainer(tuned_dev, p).train(ds);
  EXPECT_TRUE(tuned.tuned);
  EXPECT_LE(tuned.tuning.tuned_find_split_seconds,
            tuned.tuning.baseline_find_split_seconds + 1e-15);
  EXPECT_EQ(tuned.trees.size(), plain.trees.size());
  // The knobs only re-block kernels; the fit must not degrade.
  EXPECT_NEAR(rmse(tuned.train_scores, ds.labels()),
              rmse(plain.train_scores, ds.labels()), 1e-9);
}

}  // namespace
}  // namespace gbdt::autotune
