// Stream/event/async-copy semantics of the simulated device: default-stream
// programs stay bitwise identical to the legacy synchronous path,
// independent streams overlap in modeled time, event and sync edges extend
// the per-stream clocks, illegal waits fail loudly (unknown ids, deferred
// deadlocks), and schedule-perturbation mode leaves race-free programs —
// data and modeled clocks alike — untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "device/device_context.h"
#include "device/device_memory.h"

namespace gbdt {
namespace {

device::DeviceConfig small_config() {
  device::DeviceConfig c = device::DeviceConfig::titan_x_pascal();
  c.global_mem_bytes = 1 << 20;
  return c;
}

/// Fills out[lo, lo+len) with v on `stream`; footprint-declared so the
/// suite runs clean under GBDT_RACE_DETECT=1.
void fill_async(device::Device& dev, int stream, std::span<float> out,
                std::int64_t lo, std::int64_t len, float v) {
  dev.launch_async("stream_test_fill", stream, device::grid_for(len, 32), 32,
                   [out, lo, len, v](device::BlockCtx& b) {
                     b.for_each_thread([&](std::int64_t i) {
                       if (i < len) {
                         out[static_cast<std::size_t>(lo + i)] = v;
                       }
                     });
                     const std::int64_t tile_lo =
                         std::min(b.block_idx() * b.block_dim(), len);
                     const std::int64_t tile_n = std::min<std::int64_t>(
                         b.block_dim(), len - tile_lo);
                     b.writes(out, lo + tile_lo, tile_n);
                     b.work(static_cast<std::uint64_t>(tile_n));
                   });
}

TEST(Streams, DefaultStreamRouteMatchesLegacyLaunchBitwise) {
  const std::int64_t n = 256;
  device::Device legacy(small_config());
  auto a = legacy.alloc<float>(static_cast<std::size_t>(n));
  {
    const auto sp = a.span();
    legacy.launch("stream_test_fill", device::grid_for(n, 32), 32,
                  [sp, n](device::BlockCtx& b) {
                    b.for_each_thread([&](std::int64_t i) {
                      if (i < n) sp[static_cast<std::size_t>(i)] =
                          static_cast<float>(i);
                    });
                    b.writes_tile(sp, n);
                    b.work(static_cast<std::uint64_t>(n));
                  });
  }
  device::Device routed(small_config());
  auto b2 = routed.alloc<float>(static_cast<std::size_t>(n));
  {
    const auto sp = b2.span();
    routed.launch_async("stream_test_fill", device::kDefaultStream,
                        device::grid_for(n, 32), 32,
                        [sp, n](device::BlockCtx& b) {
                          b.for_each_thread([&](std::int64_t i) {
                            if (i < n) sp[static_cast<std::size_t>(i)] =
                                static_cast<float>(i);
                          });
                          b.writes_tile(sp, n);
                          b.work(static_cast<std::uint64_t>(n));
                        });
  }
  const auto ha = legacy.to_host(a);
  const auto hb = routed.to_host(b2);
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i], hb[i]) << i;
  // Same ops, same modeled time, and a default-stream-only history never
  // overlaps anything.
  EXPECT_DOUBLE_EQ(legacy.elapsed_seconds(), routed.elapsed_seconds());
  EXPECT_LT(routed.overlap_ratio(), 1e-12);
}

TEST(Streams, IndependentStreamsOverlapInModeledTime) {
  device::Device dev(small_config());
  const int s1 = dev.stream();
  const int s2 = dev.stream();
  const std::int64_t n = 4096;
  auto a = dev.alloc<float>(static_cast<std::size_t>(n));
  auto b = dev.alloc<float>(static_cast<std::size_t>(n));
  fill_async(dev, s1, a.span(), 0, n, 1.f);
  fill_async(dev, s2, b.span(), 0, n, 2.f);
  dev.sync();
  const auto& tl = dev.timeline();
  // Two equal kernels on independent streams: the makespan is one kernel,
  // the busy sum is two.
  EXPECT_LT(tl.makespan_seconds, tl.total_seconds());
  EXPECT_GT(dev.overlap_ratio(), 0.4);
  ASSERT_GE(tl.streams.size(), 3u);
  EXPECT_EQ(tl.streams[static_cast<std::size_t>(s1)].ops, 1u);
  EXPECT_EQ(tl.streams[static_cast<std::size_t>(s2)].ops, 1u);
}

TEST(Streams, SameStreamIsFifoSerial) {
  device::Device dev(small_config());
  const int s = dev.stream();
  const std::int64_t n = 4096;
  auto a = dev.alloc<float>(static_cast<std::size_t>(n));
  fill_async(dev, s, a.span(), 0, n, 1.f);
  fill_async(dev, s, a.span(), 0, n, 2.f);
  dev.sync();
  // FIFO within a stream: no overlap, makespan equals the busy sum.
  EXPECT_NEAR(dev.timeline().makespan_seconds, dev.timeline().total_seconds(),
              1e-12 * dev.timeline().total_seconds());
  const auto host = dev.to_host(a);
  for (const float v : host) EXPECT_EQ(v, 2.f);
}

TEST(Streams, DefaultStreamBlocksEveryOtherStream) {
  device::Device dev(small_config());
  const int s1 = dev.stream();
  const int s2 = dev.stream();
  const std::int64_t n = 4096;
  auto a = dev.alloc<float>(static_cast<std::size_t>(n));
  auto b = dev.alloc<float>(static_cast<std::size_t>(n));
  auto c = dev.alloc<float>(static_cast<std::size_t>(n));
  fill_async(dev, s1, a.span(), 0, n, 1.f);
  // Legacy blocking stream: joins every stream clock first, propagates its
  // end to all of them after.
  fill_async(dev, device::kDefaultStream, b.span(), 0, n, 2.f);
  fill_async(dev, s2, c.span(), 0, n, 3.f);
  dev.sync();
  EXPECT_NEAR(dev.timeline().makespan_seconds, dev.timeline().total_seconds(),
              1e-12 * dev.timeline().total_seconds());
  EXPECT_LT(dev.overlap_ratio(), 1e-9);
}

TEST(Streams, EventEdgeSerializesTheWaitingStream) {
  device::Device dev(small_config());
  const int s1 = dev.stream();
  const int s2 = dev.stream();
  const std::int64_t n = 4096;
  auto a = dev.alloc<float>(static_cast<std::size_t>(n));
  auto b = dev.alloc<float>(static_cast<std::size_t>(n));
  fill_async(dev, s1, a.span(), 0, n, 1.f);
  const int done = dev.record_event(s1);
  // hb: producer fill on s1 -> dependent fill on s2 (test chains the clocks)
  dev.wait_event(s2, done);
  fill_async(dev, s2, b.span(), 0, n, 2.f);
  dev.sync();
  // The event chains the two kernels end-to-start: serial makespan even
  // though they sit on different streams.
  EXPECT_NEAR(dev.timeline().makespan_seconds, dev.timeline().total_seconds(),
              1e-12 * dev.timeline().total_seconds());
}

TEST(Streams, HostSyncOrdersLaterEnqueues) {
  device::Device dev(small_config());
  const int s1 = dev.stream();
  const int s2 = dev.stream();
  const std::int64_t n = 4096;
  auto a = dev.alloc<float>(static_cast<std::size_t>(n));
  auto b = dev.alloc<float>(static_cast<std::size_t>(n));
  fill_async(dev, s1, a.span(), 0, n, 1.f);
  dev.sync(s1);
  fill_async(dev, s2, b.span(), 0, n, 2.f);
  dev.sync();
  EXPECT_NEAR(dev.timeline().makespan_seconds, dev.timeline().total_seconds(),
              1e-12 * dev.timeline().total_seconds());
  EXPECT_DOUBLE_EQ(dev.timeline().host_clock, dev.timeline().makespan_seconds);
}

TEST(Streams, AsyncCopiesRoundtripWithEventOrdering) {
  device::Device dev(small_config());
  const int s_copy = dev.stream();
  const int s_compute = dev.stream();
  const std::int64_t n = 512;
  auto buf = dev.alloc<float>(static_cast<std::size_t>(n));
  std::vector<float> host_in(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < host_in.size(); ++i) {
    host_in[i] = static_cast<float>(i);
  }
  dev.copy_to_device_async("stream_test_upload", s_copy,
                           std::span<const float>(host_in), buf);
  const int uploaded = dev.record_event(s_copy);
  // hb: upload(s_copy) -> increment kernel(s_compute)
  dev.wait_event(s_compute, uploaded);
  const auto sp = buf.span();
  dev.launch_async("stream_test_increment", s_compute,
                   device::grid_for(n, 32), 32,
                   [sp, n](device::BlockCtx& b) {
                     b.for_each_thread([&](std::int64_t i) {
                       if (i < n) sp[static_cast<std::size_t>(i)] += 1.f;
                     });
                     b.writes_tile(sp, n);
                     b.reads_tile(sp, n);
                   });
  std::vector<float> host_out(static_cast<std::size_t>(n));
  dev.copy_to_host_async("stream_test_download", s_compute, buf,
                         std::span<float>(host_out));
  dev.sync();
  for (std::size_t i = 0; i < host_out.size(); ++i) {
    EXPECT_EQ(host_out[i], static_cast<float>(i) + 1.f) << i;
  }
  // Labeled transfers land in the per-label transfer table.
  const auto& tt = dev.timeline().stream_transfers;
  ASSERT_EQ(tt.count("stream_test_upload"), 1u);
  ASSERT_EQ(tt.count("stream_test_download"), 1u);
  EXPECT_EQ(tt.at("stream_test_upload").bytes, sizeof(float) * host_in.size());
}

TEST(Streams, WaitOnUnknownEventThrows) {
  device::Device dev(small_config());
  const int s = dev.stream();
  EXPECT_THROW(dev.wait_event(s, 12345), std::logic_error);
  EXPECT_THROW(dev.wait_event(s, -1), std::logic_error);
}

TEST(Streams, OpsOnUnknownStreamThrow) {
  device::Device dev(small_config());
  EXPECT_THROW(dev.sync(42), std::logic_error);
  EXPECT_THROW((void)dev.record_event(42), std::logic_error);
}

TEST(Streams, DeferredCrossWaitsCannotDeadlock) {
  // record_event creates the event and enqueues its record op atomically, so
  // every deferred wait's record sits earlier in program order — wait cycles
  // are unconstructible through the public API and the drain's "stream
  // deadlock" guard stays a defensive backstop.  The tightest legal
  // cross-wait pattern must drain cleanly.
  device::Device dev(small_config());
  const int s1 = dev.stream();
  const int s2 = dev.stream();
  const std::int64_t n = 64;
  auto a = dev.alloc<float>(static_cast<std::size_t>(n));
  auto b = dev.alloc<float>(static_cast<std::size_t>(n));
  dev.set_schedule_fuzz(7);
  const int e1 = dev.record_event(s1);
  const int e2 = dev.record_event(s2);
  // hb: record(s2) -> fill(s1) (cross-wait pair, both directions)
  dev.wait_event(s1, e2);
  // hb: record(s1) -> fill(s2) (cross-wait pair, both directions)
  dev.wait_event(s2, e1);
  fill_async(dev, s1, a.span(), 0, n, 1.f);
  fill_async(dev, s2, b.span(), 0, n, 2.f);
  EXPECT_NO_THROW(dev.sync());
  for (const float v : dev.to_host(a)) EXPECT_EQ(v, 1.f);
  for (const float v : dev.to_host(b)) EXPECT_EQ(v, 2.f);
  dev.clear_schedule_fuzz();
}

TEST(Streams, ScheduleFuzzKeepsDataAndClocksInvariant) {
  std::vector<float> baseline;
  double baseline_makespan = 0.0;
  for (const std::uint64_t seed : {0ull, 1ull, 99ull, 123456789ull}) {
    device::Device dev(small_config());
    if (seed != 0) dev.set_schedule_fuzz(seed);
    const int s_copy = dev.stream();
    const int s_compute = dev.stream();
    const std::int64_t n = 512;
    auto buf = dev.alloc<float>(static_cast<std::size_t>(n));
    auto out = dev.alloc<float>(static_cast<std::size_t>(n));
    std::vector<float> host_in(static_cast<std::size_t>(n), 3.f);
    dev.copy_to_device_async("stream_test_upload", s_copy,
                             std::span<const float>(host_in), buf);
    const int uploaded = dev.record_event(s_copy);
    // hb: upload(s_copy) -> scale kernel(s_compute)
    dev.wait_event(s_compute, uploaded);
    const auto in_sp = buf.span();
    const auto out_sp = out.span();
    dev.launch_async("stream_test_scale", s_compute, device::grid_for(n, 32),
                     32, [in_sp, out_sp, n](device::BlockCtx& b) {
                       b.for_each_thread([&](std::int64_t i) {
                         if (i < n) {
                           out_sp[static_cast<std::size_t>(i)] =
                               2.f * in_sp[static_cast<std::size_t>(i)];
                         }
                       });
                       b.reads_tile(in_sp, n);
                       b.writes_tile(out_sp, n);
                     });
    dev.sync();
    const auto host = dev.to_host(out);
    if (seed == 0) {
      baseline = host;
      baseline_makespan = dev.timeline().makespan_seconds;
      continue;
    }
    // Race-free program: every legal interleaving yields bitwise-identical
    // data, and the modeled clocks are DAG-determined, so the makespan is
    // schedule-invariant too.
    ASSERT_EQ(host.size(), baseline.size()) << "seed " << seed;
    for (std::size_t i = 0; i < host.size(); ++i) {
      EXPECT_EQ(host[i], baseline[i]) << "seed " << seed << " elem " << i;
    }
    EXPECT_DOUBLE_EQ(dev.timeline().makespan_seconds, baseline_makespan)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace gbdt
