// Fused find-split pipeline (src/primitives/fused_split.h): the fused and
// GBDT_UNFUSED_SPLIT escape-hatch paths must produce bitwise-identical
// forests on every trainer path (dense interleaved, sparse, both RLE split
// strategies, feature-parallel multi-GPU), the fused primitives must agree
// element-for-element with the unfused sequence they replace, every fused
// kernel must run clean under the access auditor, and the workspace arena
// must hold per-level device allocations at ~O(1).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/access_audit.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "multigpu/multi_trainer.h"
#include "primitives/fused_split.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"

namespace gbdt {
namespace {

using device::Device;
using device::DeviceConfig;

/// Forces one fused mode for the test body and restores the previous mode
/// on exit, so the process-wide flag never leaks across tests.
class ScopedFusedMode {
 public:
  explicit ScopedFusedMode(bool on) : was_(prim::fused_split_enabled()) {
    prim::set_fused_split_enabled(on);
  }
  ~ScopedFusedMode() { prim::set_fused_split_enabled(was_); }

 private:
  bool was_;
};

data::Dataset mixed_dataset(unsigned seed, double density = 0.7,
                            int distinct = 5) {
  data::SyntheticSpec spec;
  spec.n_instances = 400;
  spec.n_attributes = 9;
  spec.density = density;
  spec.distinct_values = distinct;  // duplicates exercise suppression
  spec.seed = seed;
  return data::generate(spec);
}

std::vector<Tree> train_forest(const GBDTParam& p, const data::Dataset& ds,
                               bool fused) {
  ScopedFusedMode mode(fused);
  Device dev(DeviceConfig::titan_x_pascal());
  auto r = GpuGbdtTrainer(dev, p).train(ds);
  return std::move(r.trees);
}

void expect_bitwise_equal_forests(const std::vector<Tree>& a,
                                  const std::vector<Tree>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(a[t], b[t], 0.0)) << "tree " << t;
  }
}

TEST(FusedSplit, SparseFusedMatchesUnfusedBitwise) {
  const auto ds = mixed_dataset(11);
  GBDTParam p;
  p.depth = 5;
  p.n_trees = 3;
  expect_bitwise_equal_forests(train_forest(p, ds, true),
                               train_forest(p, ds, false));
}

TEST(FusedSplit, DenseInterleavedFusedMatchesUnfusedBitwise) {
  const auto ds = mixed_dataset(12, /*density=*/1.0);
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 3;
  p.dense_layout = true;
  expect_bitwise_equal_forests(train_forest(p, ds, true),
                               train_forest(p, ds, false));
}

TEST(FusedSplit, RleDirectFusedMatchesUnfusedBitwise) {
  const auto ds = mixed_dataset(13, 0.8, /*distinct=*/4);
  GBDTParam p;
  p.depth = 5;
  p.n_trees = 3;
  p.use_rle = true;
  p.force_rle = true;
  p.use_direct_rle_split = true;
  expect_bitwise_equal_forests(train_forest(p, ds, true),
                               train_forest(p, ds, false));
}

TEST(FusedSplit, RleFallbackFusedMatchesUnfusedBitwise) {
  const auto ds = mixed_dataset(14, 0.8, /*distinct=*/4);
  GBDTParam p;
  p.depth = 5;
  p.n_trees = 3;
  p.use_rle = true;
  p.force_rle = true;
  p.use_direct_rle_split = false;
  expect_bitwise_equal_forests(train_forest(p, ds, true),
                               train_forest(p, ds, false));
}

TEST(FusedSplit, MultiGpuFusedMatchesUnfusedBitwise) {
  const auto ds = mixed_dataset(15);
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 2;
  auto shard_train = [&](bool fused) {
    ScopedFusedMode mode(fused);
    multigpu::MultiGpuTrainer trainer(DeviceConfig::titan_x_pascal(), 3, p);
    auto r = trainer.train(ds);
    return std::move(r.trees);
  };
  expect_bitwise_equal_forests(shard_train(true), shard_train(false));
}

// Primitive-level agreement: the fused gather+scan+totals must reproduce
// the gather -> segmented scan -> present-totals sequence element for
// element (including per-segment totals) on uneven segment layouts.
TEST(FusedSplit, FusedGatherScanTotalsMatchesUnfusedSequence) {
  Device dev(DeviceConfig::titan_x_pascal());
  device::WorkspaceArena arena(dev.allocator());
  const std::int64_t n = 10'000;
  // Uneven segments, including an empty one, spanning many blocks.
  std::vector<std::int64_t> offs{0, 1, 1, 700, 4096, 4097, 9000, n};
  const auto n_seg = static_cast<std::int64_t>(offs.size()) - 1;
  auto d_offs = dev.to_device<std::int64_t>(offs);
  auto keys = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
  prim::set_keys(dev, d_offs, keys, 2);

  auto src = dev.alloc<double>(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    src[static_cast<std::size_t>(i)] =
        static_cast<double>((i * 2654435761u) % 97) / 7.0;
  }

  auto fused_out = arena.alloc<double>(static_cast<std::size_t>(n));
  auto fused_tot = arena.alloc<double>(static_cast<std::size_t>(n_seg));
  auto s = src.span();
  prim::fused_gather_scan_totals(
      dev, arena, keys, fused_out, fused_tot,
      [s](device::BlockCtx& b, std::int64_t i) {
        b.reads(s, i);
        b.mem_coalesced(sizeof(double));
        return s[static_cast<std::size_t>(i)];
      },
      "test_fused_gather_scan");

  auto plain_out = dev.alloc<double>(static_cast<std::size_t>(n));
  prim::segmented_inclusive_scan_by_key(dev, src, keys, plain_out,
                                        "test_plain_scan");
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(fused_out[static_cast<std::size_t>(i)],
              plain_out[static_cast<std::size_t>(i)])
        << "element " << i;
  }
  // Totals of every non-empty segment equal the scan value at its end.
  for (std::int64_t g = 0; g < n_seg; ++g) {
    if (offs[static_cast<std::size_t>(g)] ==
        offs[static_cast<std::size_t>(g + 1)]) {
      continue;
    }
    ASSERT_EQ(fused_tot[static_cast<std::size_t>(g)],
              plain_out[static_cast<std::size_t>(
                  offs[static_cast<std::size_t>(g + 1)] - 1)])
        << "segment " << g;
  }
}

// Primitive-level agreement: the fused argmax applies the unfused
// lowest-index tie-break and leaves (0.0, -1, 0) on empty segments.
TEST(FusedSplit, FusedGainArgmaxTieBreakAndEmptySegments) {
  Device dev(DeviceConfig::titan_x_pascal());
  std::vector<std::int64_t> offs{0, 4, 4, 9};
  auto d_offs = dev.to_device<std::int64_t>(offs);
  // Segment 0: tie of 7.0 at elements 1 and 3 -> element 1 wins.
  // Segment 1: empty.  Segment 2: all zero gains -> first element wins.
  std::vector<double> gains{1.0, 7.0, 3.0, 7.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  auto best_val = dev.alloc<double>(3);
  auto best_idx = dev.alloc<std::int64_t>(3);
  auto best_dir = dev.alloc<std::uint8_t>(3);
  prim::fused_gain_argmax(
      dev, d_offs, best_val, best_idx, best_dir, 2,
      [&gains](device::BlockCtx& b, std::int64_t s, std::int64_t e,
               std::int64_t, std::int64_t) {
        (void)s;
        b.mem_coalesced(sizeof(double));
        return prim::GainDir{gains[static_cast<std::size_t>(e)],
                             static_cast<std::uint8_t>(e % 2)};
      },
      "test_fused_argmax");
  EXPECT_EQ(best_val[0], 7.0);
  EXPECT_EQ(best_idx[0], 1);
  EXPECT_EQ(best_dir[0], 1);
  EXPECT_EQ(best_val[1], 0.0);
  EXPECT_EQ(best_idx[1], -1);
  EXPECT_EQ(best_dir[1], 0);
  EXPECT_EQ(best_val[2], 0.0);
  EXPECT_EQ(best_idx[2], 4);
}

// Every new fused kernel (phase 1 under its caller-supplied label, the
// carry and fixup passes, and the fused argmax) must run clean under the
// shadow-memory access auditor on every trainer path that launches them.
TEST(FusedSplit, FusedTrainingRunsCleanUnderAudit) {
  analysis::set_audit_enabled(true);
  ScopedFusedMode mode(true);
  const auto ds = mixed_dataset(16, 0.7, 4);

  GBDTParam p;
  p.depth = 4;
  p.n_trees = 2;
  {
    Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
    EXPECT_NO_THROW(GpuGbdtTrainer(dev, p).train(ds));
  }
  {
    GBDTParam pd = p;
    pd.dense_layout = true;
    Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
    EXPECT_NO_THROW(GpuGbdtTrainer(dev, pd).train(data::generate([] {
      data::SyntheticSpec s;
      s.n_instances = 300;
      s.n_attributes = 6;
      s.density = 1.0;
      s.distinct_values = 5;
      s.seed = 17;
      return s;
    }())));
  }
  {
    GBDTParam pr = p;
    pr.use_rle = true;
    pr.force_rle = true;
    Device dev(DeviceConfig::titan_x_pascal(), /*host_workers=*/4);
    EXPECT_NO_THROW(GpuGbdtTrainer(dev, pr).train(ds));
  }
  analysis::set_audit_enabled(false);
}

}  // namespace
}  // namespace gbdt
