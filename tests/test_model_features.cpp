// Tests for the model-facade features around the core trainer: tree
// callbacks, validation tracking, early stopping, and feature importance.
#include <gtest/gtest.h>

#include <numeric>

#include "core/gbdt.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

data::Dataset make_data(unsigned seed, std::int64_t n = 800) {
  SyntheticSpec s;
  s.n_instances = n;
  s.n_attributes = 10;
  s.density = 0.8;
  s.label_noise = 0.2;
  s.seed = seed;
  return generate(s);
}

TEST(TreeCallback, SeesEveryTreeInOrder) {
  const auto ds = make_data(1);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 7;
  GpuGbdtTrainer trainer(dev, p);
  std::vector<int> seen;
  const auto r = trainer.train(ds, [&](int t, const std::vector<Tree>& f) {
    seen.push_back(t);
    EXPECT_EQ(f.size(), static_cast<std::size_t>(t) + 1);
    return true;
  });
  const std::vector<int> want{0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(seen, want);
  EXPECT_EQ(r.trees.size(), 7u);
}

TEST(TreeCallback, ReturningFalseStopsBoosting) {
  const auto ds = make_data(2);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 50;
  GpuGbdtTrainer trainer(dev, p);
  const auto r = trainer.train(ds, [&](int t, const std::vector<Tree>&) {
    return t < 4;  // stop after the 5th tree
  });
  EXPECT_EQ(r.trees.size(), 5u);
  // Scores still reflect the trained forest (the last tree is folded in).
  EXPECT_EQ(r.train_scores.size(), static_cast<std::size_t>(ds.n_instances()));
}

TEST(Validation, HistoryTracksMetricPerTree) {
  const auto full = make_data(3, 1000);
  const auto [train_set, valid] = full.split_at(800);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 10;
  auto [model, report, history] =
      GBDTModel::train_with_validation(dev, train_set, valid, p);
  EXPECT_EQ(history.metric_name, "rmse");
  ASSERT_EQ(history.metric.size(), 10u);
  EXPECT_FALSE(history.stopped_early);
  EXPECT_GE(history.best_iteration, 0);
  // The metric at the best iteration is the minimum of the trace.
  const double best = *std::min_element(history.metric.begin(),
                                        history.metric.end());
  EXPECT_DOUBLE_EQ(history.metric[static_cast<std::size_t>(history.best_iteration)],
                   best);
  // Early trees improve validation rmse on this learnable problem.
  EXPECT_LT(history.metric.back(), history.metric.front());
}

TEST(Validation, MetricMatchesDirectEvaluation) {
  const auto full = make_data(4, 600);
  const auto [train_set, valid] = full.split_at(450);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 6;
  auto [model, report, history] =
      GBDTModel::train_with_validation(dev, train_set, valid, p);
  const auto pred = model.predict(valid);
  EXPECT_NEAR(history.metric.back(), rmse(pred, valid.labels()), 1e-9);
}

TEST(Validation, EarlyStoppingTruncatesToBestIteration) {
  // Tiny training set + deep trees overfit fast: validation rmse starts
  // rising and early stopping must kick in before all 200 trees.
  const auto full = make_data(5, 260);
  const auto [train_set, valid] = full.split_at(200);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 6;
  p.n_trees = 200;
  p.eta = 0.8;
  auto [model, report, history] =
      GBDTModel::train_with_validation(dev, train_set, valid, p,
                                       /*early_stopping_rounds=*/5);
  ASSERT_TRUE(history.stopped_early);
  EXPECT_LT(history.metric.size(), 200u);
  EXPECT_EQ(model.trees().size(),
            static_cast<std::size_t>(history.best_iteration) + 1);
  // The truncated model evaluates to the best tracked metric.
  const auto pred = model.predict(valid);
  EXPECT_NEAR(rmse(pred, valid.labels()),
              history.metric[static_cast<std::size_t>(history.best_iteration)],
              1e-9);
}

TEST(Validation, LogisticUsesErrorRate) {
  SyntheticSpec s;
  s.n_instances = 800;
  s.n_attributes = 10;
  s.binary_labels = true;
  s.seed = 6;
  const auto full = generate(s);
  const auto [train_set, valid] = full.split_at(600);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 8;
  p.loss = LossKind::kLogistic;
  auto [model, report, history] =
      GBDTModel::train_with_validation(dev, train_set, valid, p);
  EXPECT_EQ(history.metric_name, "error");
  for (double m : history.metric) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

TEST(FeatureImportance, SignalAttributesDominate) {
  // The synthetic target depends on the first 8 attributes only; with 30
  // attributes, importance must concentrate on the signal block.
  SyntheticSpec s;
  s.n_instances = 1500;
  s.n_attributes = 30;
  s.density = 1.0;
  s.label_noise = 0.05;
  s.seed = 7;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 20;
  auto [model, report] = GBDTModel::train(dev, ds, p);

  for (auto kind : {ImportanceKind::kGain, ImportanceKind::kCover,
                    ImportanceKind::kSplitCount}) {
    const auto imp = model.feature_importance(kind);
    ASSERT_EQ(imp.size(), 30u);
    const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    const double signal = std::accumulate(imp.begin(), imp.begin() + 8, 0.0);
    EXPECT_GT(signal, 0.7) << "kind " << static_cast<int>(kind);
  }
}

TEST(FeatureImportance, EmptyForestGivesZeros) {
  GBDTModel model(GBDTParam{}, {}, 0.0, 5);
  const auto imp = model.feature_importance();
  ASSERT_EQ(imp.size(), 5u);
  for (double v : imp) EXPECT_EQ(v, 0.0);
}

TEST(FeatureImportance, SurvivesSaveLoad) {
  const auto ds = make_data(8);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 5;
  auto [model, report] = GBDTModel::train(dev, ds, p);
  model.save("/tmp/gbdt_feat_imp.txt");
  const auto loaded = GBDTModel::load("/tmp/gbdt_feat_imp.txt");
  EXPECT_EQ(loaded.n_attributes(), model.n_attributes());
  const auto a = model.feature_importance();
  const auto b = loaded.feature_importance();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

}  // namespace
}  // namespace gbdt
