// Tests for the comparators: blocked host reductions mirror the device
// bit-for-bit, the CPU cost model behaves like the paper's thread-scaling
// column, and the dense xgbst-gpu baseline reproduces both failure modes the
// paper reports (out-of-memory on big/sparse data, deviating RMSE from
// missing-as-zero).
#include <gtest/gtest.h>

#include <random>

#include "baselines/blocked.h"
#include "baselines/cpu_model.h"
#include "baselines/xgb_exact.h"
#include "baselines/xgb_gpu_dense.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "primitives/reduce.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"

namespace gbdt::baseline {
namespace {

using device::CpuConfig;
using device::Device;
using device::DeviceConfig;

TEST(Blocked, SumIsBitIdenticalToDeviceReduce) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (std::size_t n : {1u, 255u, 256u, 1000u, 54321u}) {
    std::vector<double> v(n);
    for (auto& x : v) x = d(rng);
    Device dev(DeviceConfig::titan_x_pascal());
    auto buf = dev.to_device<double>(v);
    const double device_sum = prim::reduce_sum<double>(dev, buf);
    EXPECT_EQ(blocked_sum(v), device_sum) << n;  // bitwise, not NEAR
  }
}

TEST(Blocked, SegScanIsBitIdenticalToDeviceScan) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (std::size_t n : {1u, 700u, 8192u, 30001u}) {
    std::vector<double> v(n);
    std::vector<std::int32_t> keys(n);
    std::int32_t key = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = d(rng);
      if (rng() % 97 == 0) ++key;  // segments of ~97 elements
      keys[i] = key;
    }
    Device dev(DeviceConfig::titan_x_pascal());
    auto d_v = dev.to_device<double>(v);
    auto d_k = dev.to_device<std::int32_t>(keys);
    auto d_out = dev.alloc<double>(n);
    prim::segmented_inclusive_scan_by_key(dev, d_v, d_k, d_out);

    std::vector<double> host_out(n);
    blocked_seg_scan(v, keys, host_out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(host_out[i], d_out[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(CpuModel, MoreThreadsNeverSlower) {
  const auto cfg = CpuConfig::dual_xeon_e5_2640v4();
  CpuCounters c;
  c.work = 1'000'000'000;
  c.stream_bytes = 4'000'000'000;
  c.irregular = 50'000'000;
  double prev = cpu_modeled_seconds(cfg, c, 1);
  for (int t : {2, 5, 10, 20, 40}) {
    const double now = cpu_modeled_seconds(cfg, c, t);
    EXPECT_LE(now, prev) << t;
    prev = now;
  }
}

TEST(CpuModel, FortyThreadSpeedupInPaperBand) {
  // Table II: xgbst-40 is 5.7x - 10.7x faster than xgbst-1.
  const auto cfg = CpuConfig::dual_xeon_e5_2640v4();
  for (auto [work, bytes, irr] :
       {std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>{
            std::uint64_t{2} << 30, 1u << 28, 1u << 20},  // compute heavy
        {1u << 20, std::uint64_t{8} << 30, 1u << 26}}) {  // memory heavy
    CpuCounters c;
    c.work = work;
    c.stream_bytes = bytes;
    c.irregular = irr;
    const double ratio =
        cpu_modeled_seconds(cfg, c, 1) / cpu_modeled_seconds(cfg, c, 40);
    EXPECT_GE(ratio, 5.0) << work;
    EXPECT_LE(ratio, 11.0) << work;
  }
}

TEST(XgbExact, FindSplitFractionNearPaperSeventyFivePercent) {
  data::SyntheticSpec spec;
  spec.n_instances = 5000;
  spec.n_attributes = 25;
  spec.density = 0.8;
  spec.seed = 77;
  const auto ds = generate(spec);
  GBDTParam p;
  p.depth = 6;
  p.n_trees = 10;
  const auto r = XgbExactTrainer(p).train(ds);
  // "around 75% of total training time for XGBoost"
  const double frac = r.find_split_fraction(CpuConfig::dual_xeon_e5_2640v4());
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.95);
}

TEST(XgbExact, ReportsMonotoneCounters) {
  data::SyntheticSpec spec;
  spec.n_instances = 500;
  spec.n_attributes = 10;
  spec.seed = 6;
  const auto ds = generate(spec);
  GBDTParam p5;
  p5.depth = 3;
  p5.n_trees = 5;
  GBDTParam p10 = p5;
  p10.n_trees = 10;
  const auto r5 = XgbExactTrainer(p5).train(ds);
  const auto r10 = XgbExactTrainer(p10).train(ds);
  EXPECT_GT(r10.total.work, r5.total.work);
  EXPECT_GT(r10.total.stream_bytes, r5.total.stream_bytes);
  const auto cfg = CpuConfig::dual_xeon_e5_2640v4();
  EXPECT_GT(r10.modeled_seconds(cfg, 40), r5.modeled_seconds(cfg, 40));
}

TEST(DenseGpu, FootprintGrowsWithShape) {
  const auto small = dense_gpu_footprint_bytes(1000, 10, 6);
  const auto wide = dense_gpu_footprint_bytes(1000, 1000, 6);
  const auto tall = dense_gpu_footprint_bytes(100000, 10, 6);
  EXPECT_GT(wide, small);
  EXPECT_GT(tall, small);
}

TEST(DenseGpu, PaperOomPattern) {
  // With the real dataset shapes, the 12 GB Titan X must refuse the
  // high-dimensional sparse datasets and accept susy/covtype/insurance —
  // the availability pattern of Table II.
  const std::size_t titan = DeviceConfig::titan_x_pascal().global_mem_bytes;
  auto fits = [&](const char* name) {
    const auto info = data::paper_dataset(name, 0.01);
    return dense_gpu_footprint_bytes(info.paper_cardinality,
                                     info.paper_dimension, 6) <= titan;
  };
  EXPECT_FALSE(fits("news20"));
  EXPECT_FALSE(fits("log1p"));
  EXPECT_FALSE(fits("e2006"));
  EXPECT_FALSE(fits("real-sim"));
  EXPECT_FALSE(fits("higgs"));
  EXPECT_TRUE(fits("susy"));
  EXPECT_TRUE(fits("covtype"));
  EXPECT_TRUE(fits("insurance"));
}

TEST(DenseGpu, OutcomeReportsOomWithoutRunning) {
  const auto info = data::paper_dataset("news20", 0.02);
  const auto ds = generate(info.spec);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 1;
  const auto out = train_xgb_gpu_dense(DeviceConfig::titan_x_pascal(), ds, p,
                                       info.paper_cardinality,
                                       info.paper_dimension);
  EXPECT_TRUE(out.oom);
  EXPECT_FALSE(out.ran);
  EXPECT_GT(out.required_bytes, out.budget_bytes);
  EXPECT_NE(out.note.find("MiB"), std::string::npos);
}

TEST(DenseGpu, DensifyFillsMissingAsZero) {
  data::Dataset ds(3);
  const std::vector<data::Entry> row{{1, 2.5f}};
  ds.add_instance(row, 1.f);
  const auto dense = densify(ds);
  ASSERT_EQ(dense.instance(0).size(), 3u);
  EXPECT_EQ(dense.instance(0)[0].value, 0.f);
  EXPECT_EQ(dense.instance(0)[1].value, 2.5f);
  EXPECT_EQ(dense.instance(0)[2].value, 0.f);
}

TEST(DenseGpu, RmseDeviatesOnSparseDataButNotOnDense) {
  // Paper: "the large RMSE of xgbst-gpu is probably because of dense
  // representation which considers missing values as 0."
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 5;

  // Sparse dataset: missing-as-zero changes the trees and the RMSE.
  data::SyntheticSpec sparse;
  sparse.n_instances = 800;
  sparse.n_attributes = 15;
  sparse.density = 0.4;
  sparse.seed = 21;
  const auto ds_sparse = generate(sparse);
  Device dev(DeviceConfig::titan_x_pascal());
  const auto ours = GpuGbdtTrainer(dev, p).train(ds_sparse);
  const auto dense_out =
      train_xgb_gpu_dense(DeviceConfig::titan_x_pascal(), ds_sparse, p);
  ASSERT_TRUE(dense_out.ran);
  const double ours_rmse = rmse(ours.train_scores, ds_sparse.labels());
  const double dense_rmse =
      rmse(dense_out.report.train_scores, ds_sparse.labels());
  EXPECT_GT(std::abs(ours_rmse - dense_rmse), 1e-6);

  // Fully dense dataset: identical semantics, identical RMSE.
  data::SyntheticSpec full;
  full.n_instances = 800;
  full.n_attributes = 15;
  full.density = 1.0;
  full.seed = 22;
  const auto ds_full = generate(full);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto ours_full = GpuGbdtTrainer(dev2, p).train(ds_full);
  const auto dense_full =
      train_xgb_gpu_dense(DeviceConfig::titan_x_pascal(), ds_full, p);
  ASSERT_TRUE(dense_full.ran);
  EXPECT_NEAR(rmse(ours_full.train_scores, ds_full.labels()),
              rmse(dense_full.report.train_scores, ds_full.labels()), 1e-9);
}

TEST(DenseGpu, NodeInterleavingInflatesPeakMemory) {
  data::SyntheticSpec spec;
  spec.n_instances = 2000;
  spec.n_attributes = 10;
  spec.density = 1.0;
  spec.seed = 33;
  const auto ds = generate(spec);
  GBDTParam p;
  p.depth = 5;
  p.n_trees = 2;
  const auto dense_out =
      train_xgb_gpu_dense(DeviceConfig::titan_x_pascal(), ds, p);
  ASSERT_TRUE(dense_out.ran);

  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam ps = p;
  ps.dense_layout = false;
  const auto sparse_run = GpuGbdtTrainer(dev, ps).train(ds);
  EXPECT_GT(dense_out.report.peak_device_bytes,
            sparse_run.peak_device_bytes);
}

TEST(DenseGpu, BehaviouralOomUnderTightBudget) {
  data::SyntheticSpec spec;
  spec.n_instances = 3000;
  spec.n_attributes = 50;
  spec.density = 1.0;
  spec.seed = 44;
  const auto ds = generate(spec);
  GBDTParam p;
  p.depth = 6;
  p.n_trees = 1;
  auto cfg = DeviceConfig::titan_x_pascal();
  // Enough to pass the analytic gate but not to actually run.
  cfg.global_mem_bytes = dense_gpu_footprint_bytes(3000, 50, 6);
  const auto out = train_xgb_gpu_dense(cfg, ds, p);
  EXPECT_TRUE(out.oom || out.ran);  // must not crash either way
  if (out.oom) {
    EXPECT_FALSE(out.ran);
    EXPECT_NE(out.note.find("device out of memory"), std::string::npos);
  }
}

}  // namespace
}  // namespace gbdt::baseline
