// Unit tests for the tree structure, losses, metrics, and model facade
// (save/load round trips, prediction semantics, missing-value routing).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/gbdt.h"
#include "core/loss.h"
#include "core/metrics.h"
#include "core/tree.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt {
namespace {

/// x[0] >= 1.0 -> left leaf (+1), else right leaf (-1); missing goes right.
Tree stump() {
  Tree t;
  const auto [l, r] = t.split(0, /*attr=*/0, /*split_value=*/1.0f,
                              /*default_left=*/false, /*gain=*/5.0);
  t.node(l).weight = 1.0;
  t.node(r).weight = -1.0;
  return t;
}

TEST(Tree, SplitCreatesChildren) {
  Tree t;
  EXPECT_EQ(t.n_nodes(), 1);
  EXPECT_TRUE(t.node(0).is_leaf());
  const auto [l, r] = t.split(0, 3, 0.5f, true, 2.0);
  EXPECT_EQ(t.n_nodes(), 3);
  EXPECT_FALSE(t.node(0).is_leaf());
  EXPECT_EQ(t.node(0).left, l);
  EXPECT_EQ(t.node(0).right, r);
  EXPECT_EQ(t.node(0).attr, 3);
  EXPECT_TRUE(t.node(0).default_left);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.n_leaves(), 2);
}

TEST(Tree, PredictRoutesBySplitValue) {
  const Tree t = stump();
  const std::int32_t attrs[] = {0};
  const float hi[] = {1.5f};
  const float eq[] = {1.0f};  // boundary: >= goes left
  const float lo[] = {0.5f};
  EXPECT_EQ(t.predict(attrs, hi, 1), 1.0);
  EXPECT_EQ(t.predict(attrs, eq, 1), 1.0);
  EXPECT_EQ(t.predict(attrs, lo, 1), -1.0);
}

TEST(Tree, MissingFollowsDefaultDirection) {
  const Tree t = stump();  // default right
  const std::int32_t attrs[] = {7};  // attribute 0 missing
  const float vals[] = {3.f};
  EXPECT_EQ(t.predict(attrs, vals, 1), -1.0);
  EXPECT_EQ(t.predict(nullptr, nullptr, 0), -1.0);

  Tree t2;
  const auto [l2, r2] = t2.split(0, 0, 1.0f, /*default_left=*/true, 1.0);
  t2.node(l2).weight = 1.0;
  t2.node(r2).weight = -1.0;
  EXPECT_EQ(t2.predict(attrs, vals, 1), 1.0);
}

TEST(Tree, LeafForReturnsLeafIds) {
  Tree t = stump();
  const std::int32_t attrs[] = {0};
  const float hi[] = {2.f};
  const auto leaf = t.leaf_for(attrs, hi, 1);
  EXPECT_TRUE(t.node(leaf).is_leaf());
  EXPECT_EQ(t.node(leaf).weight, 1.0);
}

TEST(Tree, DumpMentionsEveryNode) {
  Tree t = stump();
  const std::string d = t.dump();
  EXPECT_NE(d.find("f0"), std::string::npos);
  EXPECT_NE(d.find("leaf="), std::string::npos);
  EXPECT_NE(d.find("gain="), std::string::npos);
}

TEST(Tree, SerializeRoundTrips) {
  Tree t;
  const auto [l, r] = t.split(0, 2, 0.75f, true, 3.5);
  const auto [ll, lr] = t.split(l, 5, -1.25f, false, 1.5);
  t.node(ll).weight = 0.125;
  t.node(lr).weight = -0.5;
  t.node(r).weight = 2.0;
  t.node(0).n_instances = 100;

  std::stringstream buf;
  t.serialize(buf);
  const Tree back = Tree::deserialize(buf);
  EXPECT_TRUE(Tree::same_structure(t, back, 0.0));
  EXPECT_EQ(back.node(0).n_instances, 100);
  EXPECT_EQ(back.depth(), 2);
}

TEST(Tree, DeserializeRejectsGarbage) {
  std::stringstream bad("not a tree");
  EXPECT_THROW((void)Tree::deserialize(bad), std::runtime_error);
  std::stringstream truncated("3\n1 2 0 0.5 0 0 1 10 0 0\n");
  EXPECT_THROW((void)Tree::deserialize(truncated), std::runtime_error);
}

TEST(Tree, SameStructureDetectsDifferences) {
  Tree a = stump();
  Tree b = stump();
  EXPECT_TRUE(Tree::same_structure(a, b));
  b.node(1).weight += 1e-3;
  EXPECT_FALSE(Tree::same_structure(a, b, 1e-9));
  EXPECT_TRUE(Tree::same_structure(a, b, 1e-2));
  Tree c;
  EXPECT_FALSE(Tree::same_structure(a, c));
}

TEST(Loss, SquaredErrorDerivatives) {
  SquaredErrorLoss l;
  const auto gp = l.gradient(/*y=*/3.f, /*yhat=*/5.f);
  EXPECT_DOUBLE_EQ(gp.g, 2.0);
  EXPECT_DOUBLE_EQ(gp.h, 1.0);
  EXPECT_DOUBLE_EQ(l.transform(4.2), 4.2);
}

TEST(Loss, LogisticDerivatives) {
  LogisticLoss l;
  const auto gp = l.gradient(/*y=*/1.f, /*yhat=*/0.f);
  EXPECT_NEAR(gp.g, -0.5, 1e-12);  // sigmoid(0) - 1
  EXPECT_NEAR(gp.h, 0.25, 1e-12);
  EXPECT_NEAR(l.transform(0.0), 0.5, 1e-12);
  EXPECT_GT(l.transform(10.0), 0.99);
  // Hessian stays positive even at saturated predictions.
  EXPECT_GT(l.gradient(0.f, 100.f).h, 0.0);
}

TEST(Loss, FactoryAndGainFormula) {
  EXPECT_STREQ(make_loss(LossKind::kSquaredError)->name(), "squared_error");
  EXPECT_STREQ(make_loss(LossKind::kLogistic)->name(), "logistic");
  // Perfectly balanced split of zero-sum gradients has no gain.
  EXPECT_DOUBLE_EQ(split_gain(0, 5, 0, 5, 1.0), 0.0);
  // Separating opposite gradients has positive gain.
  EXPECT_GT(split_gain(-10, 5, 10, 5, 1.0), 0.0);
  // Leaf weight formula.
  EXPECT_DOUBLE_EQ(leaf_weight(-6, 2, 1.0), 2.0);
}

TEST(Metrics, RmseAndErrorRate) {
  const std::vector<double> pred{1.0, 0.0, 1.0, 0.25};
  const std::vector<float> label{1.f, 0.f, 0.f, 0.f};
  EXPECT_NEAR(rmse(pred, label), std::sqrt((1.0 + 0.0625) / 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(error_rate(pred, label), 0.25);
  EXPECT_DOUBLE_EQ(rmse({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(error_rate({}, {}), 0.0);
}

TEST(Model, SaveLoadPreservesPredictions) {
  data::SyntheticSpec spec;
  spec.n_instances = 300;
  spec.n_attributes = 8;
  spec.density = 0.7;
  spec.seed = 5;
  const auto ds = data::generate(spec);
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 4;
  auto [model, report] = GBDTModel::train(dev, ds, p);

  const std::string path = "/tmp/gbdt_model_test.txt";
  model.save(path);
  const auto loaded = GBDTModel::load(path);
  const auto a = model.predict(ds);
  const auto b = loaded.predict(ds);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Model, LoadRejectsWrongMagic) {
  const std::string path = "/tmp/gbdt_not_a_model.txt";
  {
    std::ofstream out(path);
    out << "something else\n";
  }
  EXPECT_THROW((void)GBDTModel::load(path), std::runtime_error);
  EXPECT_THROW((void)GBDTModel::load("/tmp/gbdt_missing_file.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace gbdt
