// Tests for the out-of-core (column-streaming) trainer: equivalence with the
// in-core exact trainer, bounded device footprint, RLE-compressed streaming,
// PCI-e traffic accounting, and the double-buffered upload pipeline
// (async-vs-sync bitwise equality, overlap, race cleanliness).
#include <gtest/gtest.h>

#include "analysis/hb_race.h"
#include "core/metrics.h"
#include "core/out_of_core.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

/// Restores the process-wide stream/race toggles on scope exit so test
/// order never leaks state.
struct ToggleGuard {
  bool async = device::stream_async_enabled();
  bool race = analysis::race_detect_enabled();
  ~ToggleGuard() {
    device::set_stream_async_enabled(async);
    analysis::set_race_detect_enabled(race);
  }
};

data::Dataset make_data(unsigned seed, std::int64_t n = 1200,
                        std::int64_t d = 14, double density = 0.7,
                        int distinct = 0) {
  SyntheticSpec s;
  s.n_instances = n;
  s.n_attributes = d;
  s.density = density;
  s.distinct_values = distinct;
  s.seed = seed;
  return generate(s);
}

GBDTParam small_param() {
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 4;
  return p;
}

TEST(OutOfCore, MatchesInCoreTrainer) {
  for (unsigned seed : {71u, 72u}) {
    const auto ds = make_data(seed);
    GBDTParam p = small_param();
    p.use_rle = false;
    Device dev1(DeviceConfig::titan_x_pascal());
    const auto in_core = GpuGbdtTrainer(dev1, p).train(ds);
    Device dev2(DeviceConfig::titan_x_pascal());
    const auto ooc = OutOfCoreTrainer(dev2, p).train(ds);

    ASSERT_EQ(ooc.trees.size(), in_core.trees.size());
    int identical = 0;
    for (std::size_t t = 0; t < ooc.trees.size(); ++t) {
      identical += Tree::same_structure(in_core.trees[t], ooc.trees[t], 1e-6);
    }
    // Accumulation associations differ (streaming l2r vs blocked scans), so
    // exact gain ties may break differently; structural equality must hold
    // for essentially every tree with the fit as backstop.
    EXPECT_GE(identical, static_cast<int>(ooc.trees.size()) - 1) << seed;
    EXPECT_NEAR(rmse(in_core.train_scores, ds.labels()),
                rmse(ooc.train_scores, ds.labels()), 1e-6)
        << seed;
  }
}

TEST(OutOfCore, TrainsWithinTinyDeviceWhereInCoreOoms) {
  SyntheticSpec s;
  s.n_instances = 20000;
  s.n_attributes = 40;
  s.density = 1.0;
  s.seed = 73;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 2;
  p.use_rle = false;

  auto cfg = DeviceConfig::titan_x_pascal();
  cfg.global_mem_bytes = 3u << 20;  // 3 MiB device; lists are ~6.4 MiB
  {
    Device dev(cfg);
    EXPECT_THROW((void)GpuGbdtTrainer(dev, p).train(ds),
                 device::DeviceOutOfMemory);
  }
  Device dev(cfg);
  OutOfCoreTrainer ooc(dev, p, /*chunk_bytes=*/1 << 20);
  const auto r = ooc.train(ds);  // streams in ~1 MiB chunks
  EXPECT_EQ(r.trees.size(), 2u);
  EXPECT_GT(r.n_chunks, 4);
  EXPECT_LT(r.peak_device_bytes, cfg.global_mem_bytes);
  EXPECT_GT(r.in_core_bytes, cfg.global_mem_bytes);
}

TEST(OutOfCore, StreamedBytesGrowWithDepthAndTrees) {
  const auto ds = make_data(74);
  GBDTParam p1 = small_param();
  p1.n_trees = 1;
  p1.depth = 2;
  GBDTParam p2 = small_param();
  p2.n_trees = 4;
  p2.depth = 5;
  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto a = OutOfCoreTrainer(dev1, p1).train(ds);
  const auto b = OutOfCoreTrainer(dev2, p2).train(ds);
  EXPECT_GT(b.streamed_bytes, 3 * a.streamed_bytes);
}

TEST(OutOfCore, CompressedStreamingShipsFewerBytes) {
  // Highly repetitive values: RLE-compressed chunks ship the run arrays
  // instead of the full value stream (the paper's PCI-e argument).
  const auto ds = make_data(75, 8000, 10, 1.0, /*distinct=*/3);
  const auto p = small_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto raw = OutOfCoreTrainer(dev1, p, 1 << 20, false).train(ds);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto rle = OutOfCoreTrainer(dev2, p, 1 << 20, true).train(ds);
  EXPECT_LT(rle.streamed_bytes, raw.streamed_bytes * 2 / 3);
  // Same forest either way: compression is lossless.
  ASSERT_EQ(raw.trees.size(), rle.trees.size());
  for (std::size_t t = 0; t < raw.trees.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(raw.trees[t], rle.trees[t], 0.0)) << t;
  }
}

TEST(OutOfCore, IncompressibleDataSkipsCompression) {
  const auto ds = make_data(76, 2000, 8, 1.0, /*distinct=*/0);
  const auto p = small_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto raw = OutOfCoreTrainer(dev1, p, 1 << 20, false).train(ds);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto rle = OutOfCoreTrainer(dev2, p, 1 << 20, true).train(ds);
  // Continuous values never pass the 1.5x gate; identical traffic.
  EXPECT_EQ(raw.streamed_bytes, rle.streamed_bytes);
}

TEST(OutOfCore, AsyncPipelineMatchesSyncHatchBitwise) {
  // The double-buffered upload pipeline must produce the identical forest to
  // the GBDT_SYNC_STREAMS escape hatch: same enqueue order, serial schedule.
  ToggleGuard guard;
  const auto ds = make_data(81, 4000, 12, 0.9);
  const auto p = small_param();

  device::set_stream_async_enabled(true);
  Device dev_async(DeviceConfig::titan_x_pascal());
  const auto async_r =
      OutOfCoreTrainer(dev_async, p, 1 << 18).train(ds);

  device::set_stream_async_enabled(false);
  Device dev_sync(DeviceConfig::titan_x_pascal());
  const auto sync_r = OutOfCoreTrainer(dev_sync, p, 1 << 18).train(ds);

  ASSERT_EQ(async_r.trees.size(), sync_r.trees.size());
  for (std::size_t t = 0; t < async_r.trees.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(async_r.trees[t], sync_r.trees[t], 0.0))
        << t;
  }
  ASSERT_EQ(async_r.train_scores.size(), sync_r.train_scores.size());
  for (std::size_t i = 0; i < async_r.train_scores.size(); ++i) {
    ASSERT_EQ(async_r.train_scores[i], sync_r.train_scores[i]) << i;
  }
  EXPECT_EQ(async_r.streamed_bytes, sync_r.streamed_bytes);

  // Upload time hides under enumeration only when the streams are real.
  // The serial ratio is makespan-vs-sum rounding noise, not overlap.
  EXPECT_GT(async_r.overlap_ratio, 0.01);
  EXPECT_LT(sync_r.overlap_ratio, 1e-9);
  EXPECT_LT(async_r.modeled_seconds, sync_r.modeled_seconds);
}

TEST(OutOfCore, AsyncPipelineIsRaceClean) {
  // With the happens-before detector armed every upload/compute edge of the
  // double-buffer must be covered; a missing wait_event throws here.
  ToggleGuard guard;
  device::set_stream_async_enabled(true);
  analysis::set_race_detect_enabled(true);
  const auto ds = make_data(82, 3000, 10, 0.8, /*distinct=*/4);
  Device dev(DeviceConfig::titan_x_pascal());
  OutOfCoreReport r;
  EXPECT_NO_THROW(r = OutOfCoreTrainer(dev, small_param(), 1 << 18).train(ds));
  EXPECT_GT(r.trees.size(), 0u);
}

TEST(OutOfCore, SchedulePerturbationIsBitwiseStable) {
  // Deferred, seeded-random-but-legal drain orders must not change the data
  // the pipeline produces — the event edges fully determine it.
  ToggleGuard guard;
  device::set_stream_async_enabled(true);
  const auto ds = make_data(83, 2500, 10, 0.9);
  const auto p = small_param();

  Device dev_eager(DeviceConfig::titan_x_pascal());
  const auto eager = OutOfCoreTrainer(dev_eager, p, 1 << 18).train(ds);

  for (std::uint64_t seed : {1ull, 99ull}) {
    Device dev(DeviceConfig::titan_x_pascal());
    dev.set_schedule_fuzz(seed);
    const auto fuzzed = OutOfCoreTrainer(dev, p, 1 << 18).train(ds);
    dev.clear_schedule_fuzz();
    ASSERT_EQ(fuzzed.train_scores.size(), eager.train_scores.size());
    for (std::size_t i = 0; i < fuzzed.train_scores.size(); ++i) {
      ASSERT_EQ(fuzzed.train_scores[i], eager.train_scores[i])
          << "seed " << seed << " instance " << i;
    }
    ASSERT_EQ(fuzzed.trees.size(), eager.trees.size());
    for (std::size_t t = 0; t < fuzzed.trees.size(); ++t) {
      EXPECT_TRUE(Tree::same_structure(fuzzed.trees[t], eager.trees[t], 0.0))
          << "seed " << seed << " tree " << t;
    }
  }
}

TEST(OutOfCore, RejectsBadConfig) {
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  EXPECT_THROW(OutOfCoreTrainer(dev, p, 100), std::invalid_argument);
  p.depth = 0;
  EXPECT_THROW(OutOfCoreTrainer(dev, p), std::invalid_argument);
  OutOfCoreTrainer ok(dev, GBDTParam{});
  data::Dataset empty(3);
  EXPECT_THROW((void)ok.train(empty), std::invalid_argument);
}

TEST(OutOfCore, MissingValuesRouteByLearnedDefault) {
  // Same construction as the in-core missing-value test: missing instances
  // behave like the high group, so the learned default must send them left.
  data::Dataset ds(2);
  for (int i = 0; i < 100; ++i) {
    const std::vector<data::Entry> high{{0, 10.f},
                                        {1, static_cast<float>(i % 7)}};
    ds.add_instance(high, 1.f);
    const std::vector<data::Entry> low{{0, -10.f},
                                       {1, static_cast<float>(i % 5)}};
    ds.add_instance(low, -1.f);
    const std::vector<data::Entry> missing{{1, static_cast<float>(i % 3)}};
    ds.add_instance(missing, 1.f);
  }
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 1;
  p.n_trees = 1;
  p.eta = 1.0;
  const auto r = OutOfCoreTrainer(dev, p).train(ds);
  const auto& root = r.trees[0].node(0);
  ASSERT_FALSE(root.is_leaf());
  EXPECT_EQ(root.attr, 0);
  EXPECT_TRUE(root.default_left);
}

}  // namespace
}  // namespace gbdt
