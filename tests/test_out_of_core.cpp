// Tests for the out-of-core (column-streaming) trainer: equivalence with the
// in-core exact trainer, bounded device footprint, RLE-compressed streaming,
// and PCI-e traffic accounting.
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/out_of_core.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

data::Dataset make_data(unsigned seed, std::int64_t n = 1200,
                        std::int64_t d = 14, double density = 0.7,
                        int distinct = 0) {
  SyntheticSpec s;
  s.n_instances = n;
  s.n_attributes = d;
  s.density = density;
  s.distinct_values = distinct;
  s.seed = seed;
  return generate(s);
}

GBDTParam small_param() {
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 4;
  return p;
}

TEST(OutOfCore, MatchesInCoreTrainer) {
  for (unsigned seed : {71u, 72u}) {
    const auto ds = make_data(seed);
    GBDTParam p = small_param();
    p.use_rle = false;
    Device dev1(DeviceConfig::titan_x_pascal());
    const auto in_core = GpuGbdtTrainer(dev1, p).train(ds);
    Device dev2(DeviceConfig::titan_x_pascal());
    const auto ooc = OutOfCoreTrainer(dev2, p).train(ds);

    ASSERT_EQ(ooc.trees.size(), in_core.trees.size());
    int identical = 0;
    for (std::size_t t = 0; t < ooc.trees.size(); ++t) {
      identical += Tree::same_structure(in_core.trees[t], ooc.trees[t], 1e-6);
    }
    // Accumulation associations differ (streaming l2r vs blocked scans), so
    // exact gain ties may break differently; structural equality must hold
    // for essentially every tree with the fit as backstop.
    EXPECT_GE(identical, static_cast<int>(ooc.trees.size()) - 1) << seed;
    EXPECT_NEAR(rmse(in_core.train_scores, ds.labels()),
                rmse(ooc.train_scores, ds.labels()), 1e-6)
        << seed;
  }
}

TEST(OutOfCore, TrainsWithinTinyDeviceWhereInCoreOoms) {
  SyntheticSpec s;
  s.n_instances = 20000;
  s.n_attributes = 40;
  s.density = 1.0;
  s.seed = 73;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 2;
  p.use_rle = false;

  auto cfg = DeviceConfig::titan_x_pascal();
  cfg.global_mem_bytes = 3u << 20;  // 3 MiB device; lists are ~6.4 MiB
  {
    Device dev(cfg);
    EXPECT_THROW((void)GpuGbdtTrainer(dev, p).train(ds),
                 device::DeviceOutOfMemory);
  }
  Device dev(cfg);
  OutOfCoreTrainer ooc(dev, p, /*chunk_bytes=*/1 << 20);
  const auto r = ooc.train(ds);  // streams in ~1 MiB chunks
  EXPECT_EQ(r.trees.size(), 2u);
  EXPECT_GT(r.n_chunks, 4);
  EXPECT_LT(r.peak_device_bytes, cfg.global_mem_bytes);
  EXPECT_GT(r.in_core_bytes, cfg.global_mem_bytes);
}

TEST(OutOfCore, StreamedBytesGrowWithDepthAndTrees) {
  const auto ds = make_data(74);
  GBDTParam p1 = small_param();
  p1.n_trees = 1;
  p1.depth = 2;
  GBDTParam p2 = small_param();
  p2.n_trees = 4;
  p2.depth = 5;
  Device dev1(DeviceConfig::titan_x_pascal());
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto a = OutOfCoreTrainer(dev1, p1).train(ds);
  const auto b = OutOfCoreTrainer(dev2, p2).train(ds);
  EXPECT_GT(b.streamed_bytes, 3 * a.streamed_bytes);
}

TEST(OutOfCore, CompressedStreamingShipsFewerBytes) {
  // Highly repetitive values: RLE-compressed chunks ship the run arrays
  // instead of the full value stream (the paper's PCI-e argument).
  const auto ds = make_data(75, 8000, 10, 1.0, /*distinct=*/3);
  const auto p = small_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto raw = OutOfCoreTrainer(dev1, p, 1 << 20, false).train(ds);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto rle = OutOfCoreTrainer(dev2, p, 1 << 20, true).train(ds);
  EXPECT_LT(rle.streamed_bytes, raw.streamed_bytes * 2 / 3);
  // Same forest either way: compression is lossless.
  ASSERT_EQ(raw.trees.size(), rle.trees.size());
  for (std::size_t t = 0; t < raw.trees.size(); ++t) {
    EXPECT_TRUE(Tree::same_structure(raw.trees[t], rle.trees[t], 0.0)) << t;
  }
}

TEST(OutOfCore, IncompressibleDataSkipsCompression) {
  const auto ds = make_data(76, 2000, 8, 1.0, /*distinct=*/0);
  const auto p = small_param();
  Device dev1(DeviceConfig::titan_x_pascal());
  const auto raw = OutOfCoreTrainer(dev1, p, 1 << 20, false).train(ds);
  Device dev2(DeviceConfig::titan_x_pascal());
  const auto rle = OutOfCoreTrainer(dev2, p, 1 << 20, true).train(ds);
  // Continuous values never pass the 1.5x gate; identical traffic.
  EXPECT_EQ(raw.streamed_bytes, rle.streamed_bytes);
}

TEST(OutOfCore, RejectsBadConfig) {
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  EXPECT_THROW(OutOfCoreTrainer(dev, p, 100), std::invalid_argument);
  p.depth = 0;
  EXPECT_THROW(OutOfCoreTrainer(dev, p), std::invalid_argument);
  OutOfCoreTrainer ok(dev, GBDTParam{});
  data::Dataset empty(3);
  EXPECT_THROW((void)ok.train(empty), std::invalid_argument);
}

TEST(OutOfCore, MissingValuesRouteByLearnedDefault) {
  // Same construction as the in-core missing-value test: missing instances
  // behave like the high group, so the learned default must send them left.
  data::Dataset ds(2);
  for (int i = 0; i < 100; ++i) {
    const std::vector<data::Entry> high{{0, 10.f},
                                        {1, static_cast<float>(i % 7)}};
    ds.add_instance(high, 1.f);
    const std::vector<data::Entry> low{{0, -10.f},
                                       {1, static_cast<float>(i % 5)}};
    ds.add_instance(low, -1.f);
    const std::vector<data::Entry> missing{{1, static_cast<float>(i % 3)}};
    ds.add_instance(missing, 1.f);
  }
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 1;
  p.n_trees = 1;
  p.eta = 1.0;
  const auto r = OutOfCoreTrainer(dev, p).train(ds);
  const auto& root = r.trees[0].node(0);
  ASSERT_FALSE(root.is_leaf());
  EXPECT_EQ(root.attr, 0);
  EXPECT_TRUE(root.default_left);
}

}  // namespace
}  // namespace gbdt
