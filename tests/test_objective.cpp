// Objective/sampling subsystem tests.
//
// Covers the seeded SamplingPlan (determinism, mask semantics, the trivial
// escape hatch, multi-GPU shard remap), trainer-level bitwise guarantees
// (disabled sampling is identical to the pre-sampling trainer; a fixed seed
// replays a sampled forest bit for bit), the ranking objective's contracts
// (query groups required; query-constant features carry no ranking gain),
// and validation-driven early stopping end to end (stop round, best-tree
// restore, eval_freq cadence, CV-fold interaction).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/cv.h"
#include "core/gbdt.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "objective/early_stop.h"
#include "objective/sampling.h"

namespace gbdt {
namespace {

using device::Device;
using device::DeviceConfig;
using objective::EarlyStopper;
using objective::resolve_feature_bag;
using objective::SamplingPlan;

data::Dataset small_dataset(std::int64_t n = 200, std::int64_t d = 6,
                            unsigned seed = 11) {
  data::SyntheticSpec spec;
  spec.n_instances = n;
  spec.n_attributes = d;
  spec.seed = seed;
  return data::generate(spec);
}

// ---- SamplingPlan --------------------------------------------------------

TEST(ResolveFeatureBag, Knobs) {
  EXPECT_EQ(resolve_feature_bag(0, 10), 10);   // all
  EXPECT_EQ(resolve_feature_bag(-1, 16), 4);   // sqrt
  EXPECT_EQ(resolve_feature_bag(-1, 2), 1);    // sqrt clamped to >= 1
  EXPECT_EQ(resolve_feature_bag(-1, 1), 1);
  EXPECT_EQ(resolve_feature_bag(5, 10), 5);    // explicit
  EXPECT_EQ(resolve_feature_bag(50, 10), 10);  // clamped to F
}

TEST(SamplingPlan, TrivialWhenDisabled) {
  GBDTParam p;  // subsample = 1.0, feature_bag = 0
  const auto plan = SamplingPlan::make(p, 0, 100, 8);
  EXPECT_TRUE(plan.trivial());
  EXPECT_FALSE(plan.rows_masked());
  EXPECT_FALSE(plan.features_masked());
  EXPECT_TRUE(plan.row_mask().empty());
  EXPECT_TRUE(plan.feature_mask().empty());
  EXPECT_EQ(plan.sampled_rows(), 100);
}

TEST(SamplingPlan, DeterministicReplayPerTree) {
  GBDTParam p;
  p.subsample = 0.5;
  p.feature_bag = -1;
  p.sampling_seed = 1234;
  const auto a = SamplingPlan::make(p, 3, 400, 16);
  const auto b = SamplingPlan::make(p, 3, 400, 16);
  EXPECT_EQ(a.row_mask(), b.row_mask());
  EXPECT_EQ(a.feature_mask(), b.feature_mask());
  // A different round draws a different plan (400 coin flips colliding is
  // a 2^-400 event).
  const auto c = SamplingPlan::make(p, 4, 400, 16);
  EXPECT_NE(a.row_mask(), c.row_mask());
}

TEST(SamplingPlan, RowMaskMatchesRatio) {
  GBDTParam p;
  p.subsample = 0.5;
  p.sampling_seed = 7;
  const auto plan = SamplingPlan::make(p, 0, 10000, 4);
  ASSERT_EQ(plan.row_mask().size(), 10000u);
  const auto kept = std::accumulate(plan.row_mask().begin(),
                                    plan.row_mask().end(), std::int64_t{0});
  EXPECT_EQ(kept, plan.sampled_rows());
  EXPECT_GT(kept, 4500);  // Bernoulli(0.5) x 10000: +/- 5 sigma ~ 250
  EXPECT_LT(kept, 5500);
}

TEST(SamplingPlan, KeepsAtLeastOneRow) {
  GBDTParam p;
  p.subsample = 1e-9;
  const auto plan = SamplingPlan::make(p, 0, 5, 4);
  EXPECT_GE(plan.sampled_rows(), 1);
}

TEST(SamplingPlan, RejectsBadSubsample) {
  GBDTParam p;
  p.subsample = 0.0;
  EXPECT_THROW(SamplingPlan::make(p, 0, 10, 4), std::exception);
  p.subsample = 1.5;
  EXPECT_THROW(SamplingPlan::make(p, 0, 10, 4), std::exception);
}

TEST(SamplingPlan, FeatureBagExactCount) {
  GBDTParam p;
  p.feature_bag = 3;
  p.sampling_seed = 99;
  const auto plan = SamplingPlan::make(p, 0, 50, 8);
  ASSERT_EQ(plan.feature_mask().size(), 8u);
  const auto in_bag = std::accumulate(plan.feature_mask().begin(),
                                      plan.feature_mask().end(), 0);
  EXPECT_EQ(in_bag, 3);
  EXPECT_TRUE(plan.row_mask().empty());  // rows stay unmasked
}

TEST(SamplingPlan, ShardFeatureMaskRemap) {
  GBDTParam p;
  p.feature_bag = 4;
  p.sampling_seed = 5;
  const std::int64_t F = 7;
  const int K = 2;
  const auto plan = SamplingPlan::make(p, 1, 50, F);
  const auto& global = plan.feature_mask();
  ASSERT_EQ(global.size(), static_cast<std::size_t>(F));
  for (int k = 0; k < K; ++k) {
    const auto local = plan.shard_feature_mask(K, k);
    // Global attribute a lives on shard a % K at local index a / K.
    std::size_t expected_size = 0;
    for (std::int64_t a = 0; a < F; ++a) {
      if (a % K != k) continue;
      ASSERT_LT(static_cast<std::size_t>(a / K), local.size());
      EXPECT_EQ(local[static_cast<std::size_t>(a / K)],
                global[static_cast<std::size_t>(a)])
          << "global attr " << a << " shard " << k;
      ++expected_size;
    }
    EXPECT_EQ(local.size(), expected_size);
  }
}

// ---- trainer-level bitwise guarantees ------------------------------------

TEST(SamplingTrain, DisabledSamplingIsBitwiseInert) {
  const auto ds = small_dataset();
  GBDTParam base;
  base.depth = 4;
  base.n_trees = 3;
  // The degenerate plan must compile out whatever the seed says.
  GBDTParam degenerate = base;
  degenerate.subsample = 1.0;
  degenerate.feature_bag = 0;
  degenerate.sampling_seed = 0xfeedface;

  Device dev_a(DeviceConfig::titan_x_pascal());
  const auto [model_a, report_a] = GBDTModel::train(dev_a, ds, base);
  Device dev_b(DeviceConfig::titan_x_pascal());
  const auto [model_b, report_b] = GBDTModel::train(dev_b, ds, degenerate);

  ASSERT_EQ(model_a.trees().size(), model_b.trees().size());
  for (std::size_t t = 0; t < model_a.trees().size(); ++t) {
    EXPECT_TRUE(
        Tree::same_structure(model_a.trees()[t], model_b.trees()[t], 0.0));
  }
  ASSERT_EQ(report_a.train_scores.size(), report_b.train_scores.size());
  for (std::size_t i = 0; i < report_a.train_scores.size(); ++i) {
    EXPECT_EQ(report_a.train_scores[i], report_b.train_scores[i]);
  }
}

TEST(SamplingTrain, FixedSeedReplaysBitwise) {
  const auto ds = small_dataset(300, 8);
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 3;
  p.subsample = 0.7;
  p.feature_bag = -1;
  p.sampling_seed = 4242;

  Device dev_a(DeviceConfig::titan_x_pascal());
  const auto [model_a, report_a] = GBDTModel::train(dev_a, ds, p);
  Device dev_b(DeviceConfig::titan_x_pascal());
  const auto [model_b, report_b] = GBDTModel::train(dev_b, ds, p);

  ASSERT_EQ(model_a.trees().size(), model_b.trees().size());
  for (std::size_t t = 0; t < model_a.trees().size(); ++t) {
    EXPECT_TRUE(
        Tree::same_structure(model_a.trees()[t], model_b.trees()[t], 0.0));
  }
  for (std::size_t i = 0; i < report_a.train_scores.size(); ++i) {
    EXPECT_EQ(report_a.train_scores[i], report_b.train_scores[i]);
  }
}

TEST(SamplingTrain, DifferentSeedDrawsDifferentForest) {
  const auto ds = small_dataset(300, 8);
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 3;
  p.subsample = 0.6;
  p.sampling_seed = 1;
  Device dev_a(DeviceConfig::titan_x_pascal());
  const auto scores_a = GBDTModel::train(dev_a, ds, p).second.train_scores;
  p.sampling_seed = 2;
  Device dev_b(DeviceConfig::titan_x_pascal());
  const auto scores_b = GBDTModel::train(dev_b, ds, p).second.train_scores;
  EXPECT_NE(scores_a, scores_b);
}

// ---- ranking objective ---------------------------------------------------

/// 20 queries x 10 docs.  Attribute 0 is constant within each query (and
/// shifts the query's labels), attribute 1 carries the within-query
/// relevance signal.
data::Dataset ranking_dataset() {
  data::Dataset ds(2);
  std::vector<std::int64_t> offsets{0};
  std::uint64_t s = 77;
  for (int q = 0; q < 20; ++q) {
    const int bias = q % 16;
    for (int i = 0; i < 10; ++i) {
      const auto rel = static_cast<int>(objective::splitmix64(s) % 8);
      const auto jitter =
          static_cast<float>(objective::splitmix64(s) % 1000) / 1111.f;
      std::vector<data::Entry> row{
          {0, static_cast<float>(bias)},
          {1, static_cast<float>(rel) + jitter}};
      ds.add_instance(row, static_cast<float>(rel + 4 * bias));
    }
    offsets.push_back(offsets.back() + 10);
  }
  ds.set_query_offsets(std::move(offsets));
  return ds;
}

TEST(RankingObjective, RequiresQueryGroups) {
  const auto ds = small_dataset();
  GBDTParam p;
  p.objective = ObjectiveKind::kRanking;
  p.n_trees = 1;
  Device dev(DeviceConfig::titan_x_pascal());
  EXPECT_THROW(GBDTModel::train(dev, ds, p), std::invalid_argument);
}

TEST(RankingObjective, QueryConstantFeatureCarriesNoGain) {
  const auto ds = ranking_dataset();
  GBDTParam p;
  p.objective = ObjectiveKind::kRanking;
  p.depth = 3;
  p.n_trees = 3;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto model = GBDTModel::train(dev, ds, p).first;
  const auto imp = model.feature_importance(ImportanceKind::kGain);
  ASSERT_EQ(imp.size(), 2u);
  // Within-query lambda sums are zero, so splitting on the query-constant
  // bias moves whole queries and gains ~nothing at the root (deeper nodes
  // hold partial queries, so a small residual gain is legitimate); the
  // signal attribute dominates.
  EXPECT_GT(imp[1], 0.0);
  EXPECT_LT(imp[0], 0.05 * imp[1]);

  // The contrast: squared error on the same data chases the bias — it
  // contributes ~64x the label variance of the signal.
  GBDTParam pw = p;
  pw.objective = ObjectiveKind::kPointwise;
  Device pw_dev(DeviceConfig::titan_x_pascal());
  const auto pw_model = GBDTModel::train(pw_dev, ds, pw).first;
  const auto pw_imp = pw_model.feature_importance(ImportanceKind::kGain);
  EXPECT_GT(pw_imp[0], pw_imp[1]);
}

TEST(RankingObjective, QueryOffsetValidation) {
  data::Dataset ds = small_dataset(10, 2);
  EXPECT_THROW(ds.set_query_offsets({1, 10}), std::invalid_argument);
  EXPECT_THROW(ds.set_query_offsets({0, 4}), std::invalid_argument);
  EXPECT_THROW(ds.set_query_offsets({0, 6, 6, 10}), std::invalid_argument);
  EXPECT_NO_THROW(ds.set_query_offsets({0, 5, 10}));
  EXPECT_EQ(ds.n_queries(), 2);
}

// ---- early stopping ------------------------------------------------------

TEST(EarlyStopperUnit, StopsAfterPatienceEvaluations) {
  EarlyStopper stopper(/*patience=*/2, /*eval_freq=*/1,
                       /*higher_is_better=*/false);
  EXPECT_FALSE(stopper.record(0, 1.0));
  EXPECT_FALSE(stopper.record(1, 0.9));   // improvement
  EXPECT_FALSE(stopper.record(2, 0.95));  // 1 eval without improvement
  EXPECT_TRUE(stopper.record(3, 0.96));   // 2 -> stop
  EXPECT_EQ(stopper.best_iteration(), 1);
  EXPECT_DOUBLE_EQ(stopper.best_metric(), 0.9);
}

TEST(EarlyStopperUnit, HigherIsBetterDirection) {
  EarlyStopper stopper(/*patience=*/1, /*eval_freq=*/1,
                       /*higher_is_better=*/true);
  EXPECT_FALSE(stopper.record(0, 0.5));
  EXPECT_FALSE(stopper.record(1, 0.7));
  EXPECT_TRUE(stopper.record(2, 0.6));
  EXPECT_EQ(stopper.best_iteration(), 1);
}

TEST(EarlyStopperUnit, ZeroPatienceOnlyTracksBest) {
  EarlyStopper stopper(/*patience=*/0);
  for (int t = 0; t < 50; ++t) {
    EXPECT_FALSE(stopper.record(t, 1.0 + t));  // never improves after t=0
  }
  EXPECT_EQ(stopper.best_iteration(), 0);
}

TEST(EarlyStopperUnit, EvalFreqCadence) {
  EarlyStopper stopper(/*patience=*/1, /*eval_freq=*/3);
  std::vector<int> evaluated;
  for (int t = 0; t < 10; ++t) {
    if (stopper.should_eval(t, 10)) evaluated.push_back(t);
  }
  EXPECT_EQ(evaluated, (std::vector<int>{2, 5, 8, 9}));  // last tree always
}

TEST(EarlyStopTrain, StopsEarlyAndRestoresBestIteration) {
  const auto train_set = small_dataset(200, 6, 11);
  // Validation labels from a different seed: the fit generalizes barely, so
  // patience runs out long before the 60-tree budget.
  const auto valid = small_dataset(100, 6, 99);
  GBDTParam p;
  p.depth = 5;
  p.n_trees = 60;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto [model, report, history] =
      GBDTModel::train_with_validation(dev, train_set, valid, p,
                                       /*early_stopping_rounds=*/3);
  EXPECT_EQ(history.metric_name, "rmse");
  EXPECT_TRUE(history.stopped_early);
  EXPECT_GE(history.best_iteration, 0);
  // The forest is truncated back to the best evaluated round.
  EXPECT_EQ(model.trees().size(),
            static_cast<std::size_t>(history.best_iteration) + 1);
  EXPECT_LT(model.trees().size(), 60u);
  // The recorded best really is the minimum of the eval history.
  double best = history.metric[0];
  for (double m : history.metric) best = std::min(best, m);
  ASSERT_EQ(history.metric.size(), history.eval_iteration.size());
  for (std::size_t i = 0; i < history.metric.size(); ++i) {
    if (history.eval_iteration[i] == history.best_iteration) {
      EXPECT_DOUBLE_EQ(history.metric[i], best);
    }
  }
}

TEST(EarlyStopTrain, EvalFreqControlsCadence) {
  const auto train_set = small_dataset(150, 5, 3);
  const auto valid = small_dataset(60, 5, 4);
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 7;
  p.eval_freq = 3;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto [model, report, history] = GBDTModel::train_with_validation(
      dev, train_set, valid, p, /*early_stopping_rounds=*/0);
  // Trees 2 and 5 by cadence, tree 6 because the last tree always scores.
  EXPECT_EQ(history.eval_iteration, (std::vector<int>{2, 5, 6}));
  EXPECT_EQ(history.metric.size(), 3u);
  EXPECT_FALSE(history.stopped_early);
  EXPECT_EQ(model.trees().size(), 7u);
}

TEST(EarlyStopTrain, RankingValidationNeedsQueries) {
  const auto train_set = ranking_dataset();
  const auto valid = small_dataset(50, 2, 8);  // no query groups
  GBDTParam p;
  p.objective = ObjectiveKind::kRanking;
  p.n_trees = 2;
  Device dev(DeviceConfig::titan_x_pascal());
  EXPECT_THROW(
      GBDTModel::train_with_validation(dev, train_set, valid, p, 2),
      std::invalid_argument);
}

TEST(EarlyStopTrain, RankingValidationUsesNdcg) {
  const auto full = ranking_dataset();
  const auto [train_set, valid] = full.split_queries_at(14);
  GBDTParam p;
  p.objective = ObjectiveKind::kRanking;
  p.depth = 3;
  p.n_trees = 8;
  p.ndcg_k = 5;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto [model, report, history] =
      GBDTModel::train_with_validation(dev, train_set, valid, p,
                                       /*early_stopping_rounds=*/4);
  EXPECT_EQ(history.metric_name, "ndcg@5");
  for (double m : history.metric) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

TEST(CvEarlyStop, RecordsPerFoldBestIterations) {
  const auto ds = small_dataset(120, 5, 21);
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 30;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto cv = cross_validate(dev, ds, p, /*k_folds=*/3, /*seed=*/42,
                                 /*early_stopping_rounds=*/3);
  ASSERT_EQ(cv.fold_best_iteration.size(), 3u);
  for (int best : cv.fold_best_iteration) {
    EXPECT_GE(best, 0);
    EXPECT_LT(best, 30);
  }
  EXPECT_EQ(cv.fold_metric.size(), 3u);
}

TEST(CvEarlyStop, EvalFreqInteraction) {
  const auto ds = small_dataset(120, 5, 22);
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 20;
  p.eval_freq = 4;
  Device dev(DeviceConfig::titan_x_pascal());
  const auto cv = cross_validate(dev, ds, p, /*k_folds=*/3, /*seed=*/42,
                                 /*early_stopping_rounds=*/2);
  ASSERT_EQ(cv.fold_best_iteration.size(), 3u);
  // Only trees 3, 7, 11, 15, 19 are ever evaluated, so every fold's best
  // iteration must land on the cadence.
  for (int best : cv.fold_best_iteration) {
    EXPECT_EQ((best + 1) % 4 == 0 || best == 19, true) << "best=" << best;
  }
}

}  // namespace
}  // namespace gbdt
