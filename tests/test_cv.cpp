// Tests for k-fold cross-validation.
#include <gtest/gtest.h>

#include "core/cv.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt {
namespace {

using data::SyntheticSpec;
using device::Device;
using device::DeviceConfig;

TEST(CrossValidate, ReportsPerFoldMetrics) {
  SyntheticSpec s;
  s.n_instances = 600;
  s.n_attributes = 8;
  s.seed = 61;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 5;
  const auto cv = cross_validate(dev, ds, p, 5);
  EXPECT_EQ(cv.metric_name, "rmse");
  ASSERT_EQ(cv.fold_metric.size(), 5u);
  for (double m : cv.fold_metric) {
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, 2.0);
  }
  EXPECT_GT(cv.mean, 0.0);
  EXPECT_GE(cv.stddev, 0.0);
}

TEST(CrossValidate, DeterministicPerSeed) {
  SyntheticSpec s;
  s.n_instances = 300;
  s.n_attributes = 6;
  s.seed = 62;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 2;
  p.n_trees = 3;
  const auto a = cross_validate(dev, ds, p, 3, 7);
  const auto b = cross_validate(dev, ds, p, 3, 7);
  EXPECT_EQ(a.fold_metric, b.fold_metric);
  const auto c = cross_validate(dev, ds, p, 3, 8);
  EXPECT_NE(a.fold_metric, c.fold_metric);
}

TEST(CrossValidate, BetterHyperparamsScoreBetter) {
  SyntheticSpec s;
  s.n_instances = 900;
  s.n_attributes = 10;
  s.label_noise = 0.05;
  s.seed = 63;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam weak;
  weak.depth = 1;
  weak.n_trees = 1;
  GBDTParam strong;
  strong.depth = 4;
  strong.n_trees = 20;
  const auto a = cross_validate(dev, ds, weak, 3);
  const auto b = cross_validate(dev, ds, strong, 3);
  EXPECT_LT(b.mean, a.mean);
}

TEST(CrossValidate, LogisticReportsErrorRate) {
  SyntheticSpec s;
  s.n_instances = 500;
  s.n_attributes = 8;
  s.binary_labels = true;
  s.seed = 64;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 8;
  p.loss = LossKind::kLogistic;
  const auto cv = cross_validate(dev, ds, p, 4);
  EXPECT_EQ(cv.metric_name, "error");
  for (double m : cv.fold_metric) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

TEST(CrossValidate, RejectsDegenerateFolds) {
  SyntheticSpec s;
  s.n_instances = 10;
  s.n_attributes = 3;
  s.seed = 65;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  EXPECT_THROW((void)cross_validate(dev, ds, p, 1), std::invalid_argument);
  EXPECT_THROW((void)cross_validate(dev, ds, p, 11), std::invalid_argument);
}

}  // namespace
}  // namespace gbdt
