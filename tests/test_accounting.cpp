// Accounting-precision tests: the analytic model is only as good as its
// counters, so the counters themselves are pinned down here — exact PCI-e
// byte counts, timeline composition, per-kernel aggregation, and the
// monotonicity properties benches rely on.
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "primitives/transform.h"

namespace gbdt {
namespace {

using device::Device;
using device::DeviceConfig;

TEST(Accounting, PcieBytesAreExact) {
  Device dev(DeviceConfig::titan_x_pascal());
  std::vector<double> host(1000, 1.0);
  auto buf = dev.to_device<double>(host);
  EXPECT_EQ(dev.timeline().bytes_to_device, 8000u);
  std::vector<float> host2(300, 2.f);
  auto buf2 = dev.to_device<float>(host2);
  EXPECT_EQ(dev.timeline().bytes_to_device, 8000u + 1200u);
  (void)dev.to_host(buf2);
  EXPECT_EQ(dev.timeline().bytes_to_host, 1200u);
  EXPECT_EQ(dev.timeline().transfers, 3u);
  // Transfer time = latency + bytes / bandwidth, exactly.
  const auto& cfg = dev.config();
  const double want = 3 * cfg.pcie_latency_us * 1e-6 +
                      (8000.0 + 1200.0 + 1200.0) /
                          (cfg.pcie_bandwidth_gbps * 1e9);
  EXPECT_NEAR(dev.timeline().transfer_seconds, want, 1e-12);
}

TEST(Accounting, KernelRecordsAggregateByName) {
  Device dev(DeviceConfig::titan_x_pascal());
  auto buf = dev.alloc<int>(1024);
  prim::fill(dev, buf, 1);
  prim::fill(dev, buf, 2);
  prim::iota(dev, buf, 0);
  const auto& kernels = dev.timeline().kernels;
  ASSERT_TRUE(kernels.contains("fill"));
  ASSERT_TRUE(kernels.contains("iota"));
  EXPECT_EQ(kernels.at("fill").launches, 2u);
  EXPECT_EQ(kernels.at("iota").launches, 1u);
  EXPECT_EQ(kernels.at("fill").stats.blocks, 8u);  // 2 x 1024/256
  EXPECT_DOUBLE_EQ(dev.timeline().kernel_seconds,
                   kernels.at("fill").seconds + kernels.at("iota").seconds);
}

TEST(Accounting, TrainerPhasesSumToTimelineDelta) {
  data::SyntheticSpec s;
  s.n_instances = 500;
  s.n_attributes = 8;
  s.seed = 95;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  const double before = dev.elapsed_seconds();
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 3;
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  const double delta = dev.elapsed_seconds() - before;
  // Phases partition the modeled time, except the final host read-back of
  // the training scores.
  EXPECT_LE(r.modeled.total(), delta);
  EXPECT_GT(r.modeled.total(), 0.95 * delta);
}

TEST(Accounting, ModeledTimeScalesWithData) {
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 3;
  double prev = 0.0;
  for (std::int64_t n : {1000, 4000, 16000}) {
    data::SyntheticSpec s;
    s.n_instances = n;
    s.n_attributes = 10;
    s.seed = 96;
    const auto ds = generate(s);
    Device dev(DeviceConfig::titan_x_pascal());
    const auto r = GpuGbdtTrainer(dev, p).train(ds);
    EXPECT_GT(r.modeled.total(), prev);
    prev = r.modeled.total();
  }
}

TEST(Accounting, FasterDeviceTrainsFasterOnSameWork) {
  data::SyntheticSpec s;
  s.n_instances = 5000;
  s.n_attributes = 12;
  s.seed = 97;
  const auto ds = generate(s);
  GBDTParam p;
  p.depth = 4;
  p.n_trees = 3;
  double k20 = 0, titan = 0, p100 = 0;
  {
    Device dev(DeviceConfig::tesla_k20());
    k20 = GpuGbdtTrainer(dev, p).train(ds).modeled.total();
  }
  {
    Device dev(DeviceConfig::titan_x_pascal());
    titan = GpuGbdtTrainer(dev, p).train(ds).modeled.total();
  }
  {
    Device dev(DeviceConfig::tesla_p100());
    p100 = GpuGbdtTrainer(dev, p).train(ds).modeled.total();
  }
  EXPECT_GT(k20, titan);
  EXPECT_GT(titan, p100);
}

TEST(Accounting, PeakMemoryCoversResidentState) {
  data::SyntheticSpec s;
  s.n_instances = 2000;
  s.n_attributes = 10;
  s.density = 1.0;
  s.seed = 98;
  const auto ds = generate(s);
  Device dev(DeviceConfig::titan_x_pascal());
  GBDTParam p;
  p.depth = 3;
  p.n_trees = 1;
  const auto r = GpuGbdtTrainer(dev, p).train(ds);
  // At minimum: original + working lists (2 x 8 B/entry) and per-instance
  // state (grad+hess+pred+node = 24 B/inst).
  const std::size_t floor_bytes =
      static_cast<std::size_t>(ds.n_entries()) * 16 +
      static_cast<std::size_t>(ds.n_instances()) * 24;
  EXPECT_GE(r.peak_device_bytes, floor_bytes);
}

}  // namespace
}  // namespace gbdt
